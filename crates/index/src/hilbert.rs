//! d-dimensional Hilbert space-filling curve.
//!
//! The Hilbert bulk load (Section 3.1) sorts the training observations by
//! their Hilbert value and packs consecutive runs into leaf pages.  This
//! module implements the curve for arbitrary dimensionality via Skilling's
//! transpose algorithm: real-valued points are quantised onto a `2^bits`
//! grid per dimension (after min/max normalisation over the input set) and
//! mapped to a single `u128` key.

use crate::zorder::{interleave_bits, quantize_points};

/// Maximum number of key bits representable in the `u128` Hilbert key.
pub const MAX_KEY_BITS: u32 = 128;

/// Computes the Hilbert index of an already-quantised point.
///
/// `coords[d]` must fit in `bits` bits; `coords.len() * bits` must not exceed
/// [`MAX_KEY_BITS`].
///
/// # Panics
///
/// Panics if the key would not fit into 128 bits or `bits` is 0.
#[must_use]
pub fn hilbert_index(coords: &[u32], bits: u32) -> u128 {
    assert!(bits > 0, "bits per dimension must be positive");
    assert!(
        coords.len() as u32 * bits <= MAX_KEY_BITS,
        "dims * bits must not exceed 128"
    );
    let mut x = coords.to_vec();
    axes_to_transpose(&mut x, bits);
    interleave_bits(&x, bits)
}

/// Skilling's AxesToTranspose: converts coordinates in place into the
/// transposed Hilbert representation.
fn axes_to_transpose(x: &mut [u32], bits: u32) {
    let n = x.len();
    if n == 0 {
        return;
    }
    let m = 1u32 << (bits - 1);

    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }

    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Returns the indices of `points` sorted by their Hilbert value.
///
/// Points are min/max-normalised over the input set and quantised to
/// `bits` bits per dimension (capped so the key fits in 128 bits).  Ties are
/// broken by the original index, making the order deterministic.
#[must_use]
pub fn hilbert_sort_order(points: &[Vec<f64>], bits: u32) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let dims = points[0].len().max(1);
    let bits = effective_bits(dims, bits);
    let grid = quantize_points(points, bits);
    let mut keyed: Vec<(u128, usize)> = grid
        .iter()
        .enumerate()
        .map(|(i, coords)| (hilbert_index(coords, bits), i))
        .collect();
    keyed.sort();
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Largest usable bits-per-dimension for `dims` dimensions, at most `wanted`.
#[must_use]
pub fn effective_bits(dims: usize, wanted: u32) -> u32 {
    (MAX_KEY_BITS / dims as u32).min(wanted).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_d_order_two_curve_matches_reference() {
        // The classic 2-d Hilbert curve on a 4x4 grid starts
        // (0,0) -> (1,0) -> (1,1) -> (0,1) -> (0,2) ...  (x, y) ordering
        // depends on axis convention; we check the defining properties
        // instead of a fixed table: all cells are visited exactly once and
        // consecutive cells are grid neighbours.
        let bits = 2;
        let mut seen = [false; 16];
        let mut by_key: Vec<(u128, (u32, u32))> = Vec::new();
        for x in 0..4u32 {
            for y in 0..4u32 {
                let key = hilbert_index(&[x, y], bits);
                assert!(key < 16);
                assert!(!seen[key as usize], "key {key} repeated");
                seen[key as usize] = true;
                by_key.push((key, (x, y)));
            }
        }
        by_key.sort();
        for w in by_key.windows(2) {
            let (x0, y0) = w[0].1;
            let (x1, y1) = w[1].1;
            let manhattan = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(manhattan, 1, "Hilbert curve must move to a neighbour");
        }
    }

    #[test]
    fn keys_are_unique_in_three_dims() {
        let bits = 3;
        let mut keys = std::collections::HashSet::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                for z in 0..8u32 {
                    assert!(keys.insert(hilbert_index(&[x, y, z], bits)));
                }
            }
        }
        assert_eq!(keys.len(), 512);
    }

    #[test]
    fn sort_order_groups_nearby_points() {
        // Two tight clusters far apart: the Hilbert order must keep each
        // cluster contiguous.
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + i as f64 * 0.01, 0.0]);
        }
        for i in 0..10 {
            pts.push(vec![100.0 + i as f64 * 0.01, 100.0]);
        }
        let order = hilbert_sort_order(&pts, 16);
        let first_half: Vec<usize> = order[..10].to_vec();
        let all_low = first_half.iter().all(|&i| i < 10);
        let all_high = first_half.iter().all(|&i| i >= 10);
        assert!(
            all_low || all_high,
            "clusters must stay contiguous: {order:?}"
        );
    }

    #[test]
    fn sort_order_is_a_permutation() {
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i * 7 % 13) as f64, (i * 3 % 11) as f64, i as f64])
            .collect();
        let mut order = hilbert_sort_order(&pts, 8);
        order.sort_unstable();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_gives_empty_order() {
        assert!(hilbert_sort_order(&[], 8).is_empty());
    }

    #[test]
    fn effective_bits_respects_key_width() {
        assert_eq!(effective_bits(16, 8), 8);
        assert_eq!(effective_bits(16, 32), 8);
        assert_eq!(effective_bits(64, 8), 2);
        assert_eq!(effective_bits(200, 8), 1);
    }

    #[test]
    #[should_panic(expected = "must not exceed 128")]
    fn oversized_key_panics() {
        let coords = vec![0u32; 20];
        let _ = hilbert_index(&coords, 8);
    }
}
