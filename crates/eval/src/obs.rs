//! Registry-backed observability reporting for the experiment harness.
//!
//! Two jobs live here:
//!
//! * the **shared guarded-column formatting** for the reader-side
//!   block-cache economics (`hit-rate  prefetch`), which every sweep table
//!   that surfaces cache behaviour uses so the columns stay aligned and
//!   the zero-gather guard is applied in exactly one place, and
//! * the **registry capture helpers**: bracket a workload with
//!   [`RegistryCapture`] to read back the [`bt_obs`] metric delta the run
//!   produced, derive certified-query throughput from the refinement
//!   histograms ([`certified_queries_per_sec`]) and render the delta as an
//!   aligned table ([`format_metrics_table`]).

use bt_obs::{Registry, Snapshot, ValueSnapshot};

/// Header fragment for the shared reader-side cache columns.
pub const CACHE_COLUMNS_HEADER: &str = "hit-rate  prefetch";

/// Rule fragment aligned under [`CACHE_COLUMNS_HEADER`].
pub const CACHE_COLUMNS_RULE: &str = "--------  --------";

/// Formats the guarded hit-rate / prefetch cell pair every cache-aware
/// sweep table shares.  Callers pass a hit rate already guarded against
/// the zero-gather case (`QueryStats::gather_hit_rate` returns 0.0 there),
/// so a budget-0 row prints `0.00` rather than `NaN`.
#[must_use]
pub fn cache_columns(hit_rate: f64, prefetches: u64) -> String {
    format!("{hit_rate:>8.2}  {prefetches:>8}")
}

/// A registry baseline captured before a workload, so the workload's
/// metric delta can be read back afterwards — the eval-side bracket over
/// [`Snapshot::delta_since`].
#[derive(Debug, Clone)]
pub struct RegistryCapture {
    baseline: Snapshot,
}

impl RegistryCapture {
    /// Snapshots the global registry as the baseline.
    #[must_use]
    pub fn begin() -> Self {
        RegistryCapture {
            baseline: Registry::global().snapshot(),
        }
    }

    /// The metric delta accumulated since [`RegistryCapture::begin`].
    #[must_use]
    pub fn delta(&self) -> Snapshot {
        Registry::global().snapshot().delta_since(&self.baseline)
    }
}

/// Certified queries per second derived from a registry delta: the
/// `bt_queries_certified_total` verdict count over the wall-clock seconds
/// the `bt_query_latency_ns` histogram accumulated.  Returns `None` when
/// the delta holds no timed queries (recording disabled, or no
/// certification workload ran).
#[must_use]
pub fn certified_queries_per_sec(delta: &Snapshot) -> Option<f64> {
    let certified = delta.counter("bt_queries_certified_total");
    let (count, sum_ns) = delta.histogram_totals("bt_query_latency_ns");
    if count == 0 || sum_ns <= 0.0 {
        return None;
    }
    Some(certified as f64 / (sum_ns / 1e9))
}

/// Renders a registry snapshot (usually a delta) as an aligned
/// `metric / value` table: counters and gauges print their value,
/// histograms print `count` and `mean`.  Zero-valued counters are kept so
/// a table row's absence always means "metric not registered", never
/// "nothing happened".
#[must_use]
pub fn format_metrics_table(snapshot: &Snapshot) -> String {
    let width = snapshot
        .metrics
        .iter()
        .map(|m| m.name.len())
        .max()
        .unwrap_or(6)
        .max("metric".len());
    let mut out = format!(
        "{:<width$}  {:>14}\n{:-<width$}  {:->14}\n",
        "metric", "value", "", ""
    );
    for m in &snapshot.metrics {
        match &m.value {
            ValueSnapshot::Counter(v) => {
                out.push_str(&format!("{:<width$}  {v:>14}\n", m.name));
            }
            ValueSnapshot::Gauge(v) => {
                out.push_str(&format!("{:<width$}  {v:>14.3}\n", m.name));
            }
            ValueSnapshot::Histogram { count, sum, .. } => {
                let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                out.push_str(&format!("{:<width$}  {count:>6} x {mean:>9.1}\n", m.name));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_columns_align_with_their_header() {
        assert_eq!(CACHE_COLUMNS_HEADER.len(), CACHE_COLUMNS_RULE.len());
        assert_eq!(cache_columns(0.87, 42).len(), CACHE_COLUMNS_HEADER.len());
        assert_eq!(cache_columns(0.0, 0), "    0.00         0");
    }

    #[test]
    fn certified_qps_derives_from_the_refinement_histograms() {
        let mut snapshot = Snapshot {
            metrics: Vec::new(),
        };
        assert_eq!(certified_queries_per_sec(&snapshot), None);
        snapshot.metrics.push(bt_obs::MetricSnapshot {
            name: "bt_queries_certified_total".into(),
            help: String::new(),
            value: ValueSnapshot::Counter(500),
        });
        snapshot.metrics.push(bt_obs::MetricSnapshot {
            name: "bt_query_latency_ns".into(),
            help: String::new(),
            value: ValueSnapshot::Histogram {
                spec: bt_obs::HistogramSpec::new(6, 36),
                count: 1000,
                sum: 2e9,
                buckets: vec![1000],
            },
        });
        // 500 certified over 2 seconds of query wall-clock.
        let qps = certified_queries_per_sec(&snapshot).unwrap();
        assert!((qps - 250.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_table_prints_every_kind() {
        let snapshot = Snapshot {
            metrics: vec![
                bt_obs::MetricSnapshot {
                    name: "bt_insert_objects_total".into(),
                    help: String::new(),
                    value: ValueSnapshot::Counter(64),
                },
                bt_obs::MetricSnapshot {
                    name: "bt_tree_height".into(),
                    help: String::new(),
                    value: ValueSnapshot::Gauge(3.0),
                },
                bt_obs::MetricSnapshot {
                    name: "bt_batch_latency_ns".into(),
                    help: String::new(),
                    value: ValueSnapshot::Histogram {
                        spec: bt_obs::HistogramSpec::new(6, 36),
                        count: 4,
                        sum: 4000.0,
                        buckets: vec![4],
                    },
                },
            ],
        };
        let table = format_metrics_table(&snapshot);
        assert!(table.starts_with("metric"));
        assert!(table.contains("bt_insert_objects_total"));
        assert!(table.contains("64"));
        assert!(table.contains("3.000"));
        assert!(
            table.contains("4 x"),
            "histograms print count x mean: {table}"
        );
    }
}
