//! Sharded concurrent anytime trees: parallel descent across subtree shards.
//!
//! The paper's anytime premise is that insertion quality scales with the
//! budget the system can spend per object.  On multi-core hardware that
//! budget is bounded by single-threaded descent — so this module partitions
//! the object space into `K` independent [`AnytimeTree`] shards and runs the
//! batched descent engine of [`crate::descent`] on all of them **in
//! parallel**:
//!
//! * a pluggable [`ShardRouter`] assigns every incoming object to a shard
//!   (the default [`CheapestRouter`] routes to the shard whose running root
//!   aggregate is closest; the data-independent [`FixedPartitionRouter`]
//!   deals objects round-robin and is the reference router for equivalence
//!   tests),
//! * [`ShardedAnytimeTree::insert_batch`] splits the batch by shard and
//!   descends every shard on its own scoped thread
//!   (`std::thread::scope` — no extra dependencies), one
//!   [`DescentCursor`](crate::DescentCursor) per shard as the concurrency
//!   unit,
//! * each shard's `finish_batch` is its single synchronisation point for
//!   structural changes, and the per-shard [`BatchOutcome`]s are merged
//!   ([`DepthHistogram::merge`], [`DescentStats::merge`]) into one
//!   [`ShardedBatchOutcome`] in input order.
//!
//! Because shards never share nodes, no locking is needed: the coordinator
//! routes (cheap, one distance per shard), the shards descend, and the merge
//! is a histogram fold.  A sharded tree with one shard performs exactly the
//! plain tree's steps, which the equivalence property tests lock down.
//!
//! Since PR 5 the layer also runs **pipelined**:
//! [`ShardedAnytimeTree::snapshot`] pins every shard's published epoch into
//! one `Send + Sync`
//! [`ShardedTreeSnapshot`], and [`ShardedAnytimeTree::pipelined_batch`]
//! drains a mini-batch through the per-shard writers *while* reader threads
//! refine a query batch against that pre-batch snapshot — reads and writes
//! overlap on the same index without locks, and the readers' answers are
//! exactly the pre-batch answers (`tests/snapshot_isolation.rs`).

use crate::arena::SnapshotRefresh;
use crate::descent::{BatchOutcome, DepthHistogram, DescentStats};
use crate::model::InsertModel;
use crate::query::{
    OutlierScore, OutlierVerdict, QueryAnswer, QueryCursor, QueryModel, QueryStats, RefineOrder,
    TreeView,
};
use crate::snapshot::TreeSnapshot;
use crate::summary::Summary;
use crate::tree::{AnytimeTree, InsertOutcome};
use bt_index::PageGeometry;

/// The policy assigning incoming objects to shards.
///
/// The router sees the object's routing point and the coordinator's running
/// per-shard aggregates (`None` for shards that have received nothing yet)
/// and returns the index of the shard the object descends into.  Routers may
/// keep state (e.g. a round-robin counter), hence `&mut self`.
pub trait ShardRouter<S: Summary> {
    /// Chooses the shard for an object whose routing point is `point`.
    ///
    /// `aggregates[k]` is the running aggregate of everything routed to
    /// shard `k` so far (`None` while the shard is empty).  The returned
    /// index must be `< aggregates.len()`.
    fn route(&mut self, point: &[f64], aggregates: &[Option<S>]) -> usize;
}

/// The default router: cheapest routing over the per-shard root aggregates.
///
/// While any shard is still empty the next empty shard wins (so all `K`
/// shards are seeded before costs are compared); afterwards the object goes
/// to the shard whose aggregate centre is closest
/// ([`Summary::sq_dist_to`]).  Over clustered data this converges to one
/// subtree region per shard — the "shard the arena by subtree" layout.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheapestRouter;

impl<S: Summary> ShardRouter<S> for CheapestRouter {
    fn route(&mut self, point: &[f64], aggregates: &[Option<S>]) -> usize {
        if let Some(empty) = aggregates.iter().position(Option::is_none) {
            return empty;
        }
        aggregates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = a.as_ref().map_or(f64::INFINITY, |s| s.sq_dist_to(point));
                let db = b.as_ref().map_or(f64::INFINITY, |s| s.sq_dist_to(point));
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(k, _)| k)
            .expect("sharded trees have at least one shard")
    }
}

/// A data-independent router dealing objects round-robin across the shards.
///
/// Deterministic and oblivious to the routing point, so an external
/// simulation can reproduce the exact partition — the reference router for
/// the sharded-vs-plain equivalence property tests, and a reasonable choice
/// for uniformly mixed streams.
#[derive(Debug, Clone, Default)]
pub struct FixedPartitionRouter {
    next: usize,
}

impl<S: Summary> ShardRouter<S> for FixedPartitionRouter {
    fn route(&mut self, _point: &[f64], aggregates: &[Option<S>]) -> usize {
        let shard = self.next % aggregates.len();
        self.next += 1;
        shard
    }
}

/// The sharded tree's single concurrency dispatch: runs `run` over the
/// selected `(shard, state)` pairs — inline when at most one pair is
/// selected (so a 1-shard tree performs exactly the plain tree's steps,
/// with no thread overhead), on one scoped thread per pair otherwise.
/// Every parallel path (batched insertion, frontier refinement, batched
/// queries, outlier rounds) goes through here, so the dispatch policy
/// exists exactly once.
fn dispatch_busy<A: Send, B: Send>(
    pairs: Vec<(A, B)>,
    busy: impl Fn(&A, &B) -> bool,
    run: impl Fn(A, B) + Sync,
) {
    let count = pairs.iter().filter(|(a, b)| busy(a, b)).count();
    if count <= 1 {
        for (a, b) in pairs {
            if busy(&a, &b) {
                run(a, b);
            }
        }
    } else {
        std::thread::scope(|scope| {
            let run = &run;
            for (a, b) in pairs {
                if busy(&a, &b) {
                    scope.spawn(move || run(a, b));
                }
            }
        });
    }
}

/// A routed batch, ready for the per-shard writers: the per-shard object
/// lists, the per-shard input indices (to restore input order in the merged
/// report) and the batch size.
type RoutedBatch<O> = (Vec<Vec<O>>, Vec<Vec<usize>>, usize);

/// The merged result of one [`ShardedAnytimeTree::insert_batch`] call.
#[derive(Debug, Clone)]
pub struct ShardedBatchOutcome {
    /// Per-object outcomes, in input order (regardless of which shard an
    /// object descended).
    pub outcomes: Vec<InsertOutcome>,
    /// Reached-leaf vs. parked-at-depth histogram merged over all shards.
    pub depths: DepthHistogram,
    /// Descent-engine work merged over all shards (summed refreshes, node
    /// visits, splits) for this batch alone.
    pub stats: DescentStats,
    /// How many of the batch's objects each shard received.
    pub objects_per_shard: Vec<usize>,
}

/// `K` independent anytime trees behind one insertion facade.
///
/// Shards never share nodes, so each one can run the full batched descent
/// engine on its own thread without synchronisation; the coordinator only
/// routes objects (one [`ShardRouter`] decision per object) and merges the
/// per-shard reports.  See the [module docs](crate::shard) for the design.
#[derive(Debug, Clone)]
pub struct ShardedAnytimeTree<S: Summary, L, R = CheapestRouter> {
    shards: Vec<AnytimeTree<S, L>>,
    /// Running aggregate of everything routed to each shard — routing state
    /// only (never refreshed/decayed), not a substitute for the shard trees'
    /// own summaries.
    aggregates: Vec<Option<S>>,
    /// Objects routed to each shard so far (router-skew observability).
    sizes: Vec<usize>,
    router: R,
    route_scratch: Vec<f64>,
}

impl<S: Summary, L, R: Default> ShardedAnytimeTree<S, L, R> {
    /// Creates `num_shards` empty shards for `dims`-dimensional data with a
    /// default-constructed router.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0` or `dims == 0`.
    #[must_use]
    pub fn new(dims: usize, geometry: PageGeometry, num_shards: usize) -> Self {
        Self::with_router(dims, geometry, num_shards, R::default())
    }
}

impl<S: Summary, L, R> ShardedAnytimeTree<S, L, R> {
    /// Creates `num_shards` empty shards routed by `router`.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0` or `dims == 0`.
    #[must_use]
    pub fn with_router(dims: usize, geometry: PageGeometry, num_shards: usize, router: R) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        Self {
            shards: (0..num_shards)
                .map(|_| AnytimeTree::new(dims, geometry))
                .collect(),
            aggregates: vec![None; num_shards],
            sizes: vec![0; num_shards],
            router,
            route_scratch: Vec::new(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Dimensionality of the indexed data.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.shards[0].dims()
    }

    /// Fanout / leaf-capacity parameters shared by every shard.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.shards[0].geometry()
    }

    /// Read access to the shard trees.
    #[must_use]
    pub fn shards(&self) -> &[AnytimeTree<S, L>] {
        &self.shards
    }

    /// Read access to one shard tree.
    #[must_use]
    pub fn shard(&self, k: usize) -> &AnytimeTree<S, L> {
        &self.shards[k]
    }

    /// The routing aggregates: everything ever routed to each shard, merged
    /// (`None` for still-empty shards).  Routing state, not refreshed.
    #[must_use]
    pub fn aggregates(&self) -> &[Option<S>] {
        &self.aggregates
    }

    /// Objects routed to each shard so far — the direct skew measure for the
    /// configured [`ShardRouter`] (a future work-stealing layer rebalances
    /// exactly this).
    ///
    /// Counted at **routing time**, not at epoch-publish time: during a
    /// pipelined batch ([`Self::pipelined_batch`]) the whole batch is routed
    /// before the per-shard writers drain it, so `shard_sizes` already
    /// includes the in-flight batch while each shard's published epoch — and
    /// any [`ShardedTreeSnapshot`] pinned before the batch — still reflects
    /// the pre-batch state.  The counts and the snapshot agree again as soon
    /// as every shard's `finish_batch` has published.
    #[must_use]
    pub fn shard_sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Takes a cheap, immutable snapshot of **every shard** at its current
    /// published epoch (one [`TreeSnapshot`] per shard, each pinning its
    /// shard's epoch registry).
    ///
    /// The snapshot answers the full sharded query surface
    /// ([`ShardedTreeSnapshot::query_with_budget`],
    /// [`ShardedTreeSnapshot::query_batch`],
    /// [`ShardedTreeSnapshot::outlier_score`]) bit-identically to querying
    /// this tree at snapshot time, and it is `Send + Sync`, so reader
    /// threads can refine against it while writers drain later batches into
    /// the live shards — the pipelined mode below does exactly that.
    #[must_use]
    pub fn snapshot(&self) -> ShardedTreeSnapshot<S, L> {
        ShardedTreeSnapshot {
            shards: self.shards.iter().map(AnytimeTree::snapshot).collect(),
        }
    }

    /// Total number of reachable nodes across all shards.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.shards.iter().map(AnytimeTree::num_nodes).sum()
    }

    /// Height of the tallest shard (a single empty leaf root has height 1).
    #[must_use]
    pub fn height(&self) -> usize {
        self.shards
            .iter()
            .map(AnytimeTree::height)
            .max()
            .unwrap_or(1)
    }

    /// The descent-engine work counters merged over all shards.
    #[must_use]
    pub fn stats(&self) -> DescentStats {
        let mut merged = DescentStats::default();
        for shard in &self.shards {
            merged.merge(shard.stats());
        }
        merged
    }

    /// Total payload-summary refresh operations over all shards.
    #[must_use]
    pub fn summary_refreshes(&self) -> u64 {
        self.stats().summary_refreshes
    }
}

impl<S: Summary, L, R: ShardRouter<S>> ShardedAnytimeTree<S, L, R> {
    /// Routes one object: asks the router for a shard and folds the object
    /// into that shard's running aggregate.
    fn route_object<M>(&mut self, model: &M, obj: &M::Object) -> usize
    where
        M: InsertModel<S, LeafItem = L>,
    {
        let point = model.route_point(obj, &mut self.route_scratch);
        let shard = self.router.route(point, &self.aggregates);
        assert!(shard < self.shards.len(), "router chose shard {shard}");
        match &mut self.aggregates[shard] {
            Some(agg) => model.absorb_into(agg, obj),
            slot @ None => *slot = Some(model.summary_of(obj)),
        }
        self.sizes[shard] += 1;
        shard
    }

    /// Inserts one object with `budget` descent steps into the shard the
    /// router assigns it.  A batch of one on that shard — no threads.
    pub fn insert<M>(&mut self, model: &mut M, obj: M::Object, budget: usize) -> InsertOutcome
    where
        M: InsertModel<S, LeafItem = L>,
        L: Clone,
    {
        let shard = self.route_object(model, &obj);
        self.shards[shard].insert(model, obj, budget)
    }

    /// Inserts a mini-batch of objects, each with a budget of `budget`
    /// descent steps, descending every shard's share **in parallel** on
    /// scoped threads.
    ///
    /// The coordinator routes the whole batch first (objects keep their
    /// relative order within a shard, so hitchhiker pickup behaves exactly
    /// as the plain tree's batched insertion does), then every shard with
    /// work runs [`AnytimeTree::insert_batch`] concurrently; each shard's
    /// `finish_batch` is its single synchronisation point for structural
    /// changes.  `make_model` constructs one insertion model per worker —
    /// models are per-shard scratch state and never cross threads.
    ///
    /// When only one shard receives work the batch runs inline on the
    /// calling thread, so a 1-shard tree performs exactly the plain tree's
    /// steps.
    pub fn insert_batch<M, F>(
        &mut self,
        make_model: &F,
        objs: Vec<M::Object>,
        budget: usize,
    ) -> ShardedBatchOutcome
    where
        M: InsertModel<S, LeafItem = L>,
        M::Object: Send,
        S: Send + Sync,
        L: Send + Sync + Clone,
        F: Fn() -> M + Sync,
    {
        let (per_shard_objs, per_shard_idx, total) = self.route_batch(make_model, objs);
        self.descend_routed(make_model, per_shard_objs, per_shard_idx, total, budget)
    }

    /// Routes a whole batch through the coordinator: returns the per-shard
    /// object lists, the per-shard input indices (to restore input order in
    /// the merged report) and the batch size.
    fn route_batch<M, F>(&mut self, make_model: &F, objs: Vec<M::Object>) -> RoutedBatch<M::Object>
    where
        M: InsertModel<S, LeafItem = L>,
        F: Fn() -> M + Sync,
    {
        let total = objs.len();
        let num_shards = self.shards.len();
        let mut per_shard_objs: Vec<Vec<M::Object>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut per_shard_idx: Vec<Vec<usize>> = (0..num_shards).map(|_| Vec::new()).collect();
        let router_model = make_model();
        for (i, obj) in objs.into_iter().enumerate() {
            let shard = self.route_object(&router_model, &obj);
            per_shard_idx[shard].push(i);
            per_shard_objs[shard].push(obj);
        }
        (per_shard_objs, per_shard_idx, total)
    }

    /// Descends an already-routed batch: every busy shard drains its share
    /// on its own scoped thread and the per-shard reports are merged in
    /// input order.
    fn descend_routed<M, F>(
        &mut self,
        make_model: &F,
        per_shard_objs: Vec<Vec<M::Object>>,
        per_shard_idx: Vec<Vec<usize>>,
        total: usize,
        budget: usize,
    ) -> ShardedBatchOutcome
    where
        M: InsertModel<S, LeafItem = L>,
        M::Object: Send,
        S: Send + Sync,
        L: Send + Sync + Clone,
        F: Fn() -> M + Sync,
    {
        let num_shards = self.shards.len();
        let objects_per_shard: Vec<usize> = per_shard_objs.iter().map(Vec::len).collect();
        let mut results: Vec<Option<BatchOutcome>> = (0..num_shards).map(|_| None).collect();
        dispatch_busy(
            self.shards
                .iter_mut()
                .zip(per_shard_objs.into_iter().zip(results.iter_mut()))
                .collect(),
            |_, (objs, _)| !objs.is_empty(),
            |shard, (objs, slot)| {
                let mut model = make_model();
                *slot = Some(shard.insert_batch(&mut model, objs, budget));
            },
        );

        let mut outcomes = vec![InsertOutcome::ReachedLeaf; total];
        let mut depths = DepthHistogram::default();
        let mut stats = DescentStats::default();
        for (result, indices) in results.into_iter().zip(per_shard_idx) {
            let Some(batch) = result else {
                debug_assert!(indices.is_empty(), "shard with work produced no outcome");
                continue;
            };
            depths.merge(&batch.depths);
            stats.merge(&batch.stats);
            for (i, outcome) in indices.into_iter().zip(batch.outcomes) {
                outcomes[i] = outcome;
            }
        }
        ShardedBatchOutcome {
            outcomes,
            depths,
            stats,
            objects_per_shard,
        }
    }

    /// The **pipelined mode**: drains a mini-batch through the per-shard
    /// writers *while* reader threads refine a query batch against the
    /// pre-batch snapshot — inserts and queries overlap on the same index
    /// without locks.
    ///
    /// Concretely: the coordinator pins a [`ShardedTreeSnapshot`] (the
    /// pre-batch epochs), routes the whole batch, then one scoped writer
    /// thread per busy shard drains its share (exactly
    /// [`Self::insert_batch`]) while one scoped reader thread per non-empty
    /// snapshot shard refines the entire query batch against its frozen
    /// shard view.  Writers copy-on-write any node the snapshot still pins,
    /// so the returned answers are **exactly the pre-batch answers** —
    /// bit-identical to calling [`Self::query_batch`] before the batch
    /// (property-tested in `tests/snapshot_isolation.rs`).
    ///
    /// `make_query_model` must use the *pre-batch* global normaliser for
    /// that equivalence to extend across shards.
    ///
    /// # Panics
    ///
    /// Panics if any query has the wrong dimensionality.
    #[allow(clippy::too_many_arguments)]
    pub fn pipelined_batch<M, F, Q, G>(
        &mut self,
        make_model: &F,
        objs: Vec<M::Object>,
        budget: usize,
        make_query_model: &G,
        queries: &[Vec<f64>],
        order: RefineOrder,
        query_budget: usize,
    ) -> PipelinedOutcome
    where
        M: InsertModel<S, LeafItem = L>,
        M::Object: Send,
        S: Send + Sync,
        L: Send + Sync + Clone,
        R: Send,
        Q: QueryModel<S, LeafItem = L>,
        F: Fn() -> M + Sync,
        G: Fn() -> Q + Sync,
    {
        let snapshot = self.snapshot();
        let (per_shard_objs, per_shard_idx, total) = self.route_batch(make_model, objs);
        let num_shards = snapshot.num_shards();
        let mut insert_slot: Option<ShardedBatchOutcome> = None;
        let mut per_shard_answers: Vec<Option<(Vec<QueryAnswer>, QueryStats)>> =
            (0..num_shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            let writer = &mut *self;
            let insert_slot = &mut insert_slot;
            scope.spawn(move || {
                *insert_slot = Some(writer.descend_routed(
                    make_model,
                    per_shard_objs,
                    per_shard_idx,
                    total,
                    budget,
                ));
            });
            for (shard, slot) in snapshot.shards().iter().zip(per_shard_answers.iter_mut()) {
                if shard.node(shard.root()).is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    let model = make_query_model();
                    *slot = Some(shard.query_batch(&model, queries, order, query_budget));
                });
            }
        });
        let (answers, query_stats) = fold_query_partials(per_shard_answers, queries.len());
        PipelinedOutcome {
            insert: insert_slot.expect("writer thread completed"),
            answers,
            query_stats,
        }
    }
}

/// The folded result of one sharded anytime query: per-shard frontier
/// partials summed into one global mixture answer.
///
/// The fold is plain summation, so it requires every shard's [`QueryModel`]
/// to use the same *global* normaliser (e.g. the total object count across
/// shards).  Because each shard's `[lower, upper]` interval can only tighten
/// with budget (the [`query`](crate::query) module's nesting contract), the
/// folded interval inherits the monotonicity guarantee: more per-shard
/// budget never worsens the global bound.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedQueryAnswer {
    /// Point estimate of the global answer (sum of the shard estimates).
    pub estimate: f64,
    /// Certain lower bound on the fully refined global answer.
    pub lower: f64,
    /// Certain upper bound on the fully refined global answer.
    pub upper: f64,
    /// Total refinement steps (node reads) across all shards.
    pub nodes_read: usize,
    /// Refinement steps each shard spent.
    pub per_shard_nodes: Vec<usize>,
}

impl ShardedQueryAnswer {
    /// Width of the folded bound interval (non-increasing in budget).
    #[must_use]
    pub fn uncertainty(&self) -> f64 {
        (self.upper - self.lower).max(0.0)
    }

    /// The single-tree shape of this answer (dropping the per-shard split).
    #[must_use]
    pub fn as_answer(&self) -> QueryAnswer {
        QueryAnswer {
            estimate: self.estimate,
            lower: self.lower,
            upper: self.upper,
            nodes_read: self.nodes_read,
        }
    }

    fn empty(num_shards: usize) -> Self {
        ShardedQueryAnswer {
            estimate: 0.0,
            lower: 0.0,
            upper: 0.0,
            nodes_read: 0,
            per_shard_nodes: vec![0; num_shards],
        }
    }

    /// Adds shard `k`'s partial answer into the fold — the single place the
    /// fold arithmetic lives, shared by the one-shot, batched and
    /// outlier-scoring paths.
    fn accumulate(&mut self, k: usize, partial: &QueryAnswer) {
        self.estimate += partial.estimate;
        self.lower += partial.lower;
        self.upper += partial.upper;
        self.nodes_read += partial.nodes_read;
        self.per_shard_nodes[k] += partial.nodes_read;
    }

    fn fold(cursors: &[QueryCursor]) -> Self {
        let mut answer = ShardedQueryAnswer::empty(cursors.len());
        for (k, cursor) in cursors.iter().enumerate() {
            answer.accumulate(k, &cursor.answer());
        }
        answer
    }
}

/// The merged result of one [`ShardedAnytimeTree::pipelined_batch`] call:
/// the insert-side report plus the query answers computed against the
/// pre-batch snapshot while the batch was draining.
#[derive(Debug, Clone)]
pub struct PipelinedOutcome {
    /// The insert-side report (identical in shape to
    /// [`ShardedAnytimeTree::insert_batch`]'s).
    pub insert: ShardedBatchOutcome,
    /// Per-query folded answers — **exactly** what
    /// [`ShardedAnytimeTree::query_batch`] would have returned before the
    /// batch.
    pub answers: Vec<ShardedQueryAnswer>,
    /// The readers' merged work counters.
    pub query_stats: QueryStats,
}

/// Folds per-shard `(answers, stats)` partials into per-query global
/// answers — shared by the batched, snapshot and pipelined query paths.
fn fold_query_partials(
    per_shard: Vec<Option<(Vec<QueryAnswer>, QueryStats)>>,
    num_queries: usize,
) -> (Vec<ShardedQueryAnswer>, QueryStats) {
    let num_shards = per_shard.len();
    let mut stats = QueryStats::default();
    let mut answers: Vec<ShardedQueryAnswer> = (0..num_queries)
        .map(|_| ShardedQueryAnswer::empty(num_shards))
        .collect();
    for (k, slot) in per_shard.into_iter().enumerate() {
        let Some((partials, shard_stats)) = slot else {
            continue;
        };
        stats.merge(&shard_stats);
        for (answer, partial) in answers.iter_mut().zip(partials) {
            answer.accumulate(k, &partial);
        }
    }
    (answers, stats)
}

/// Refines one query's per-shard frontiers **in parallel** over any set of
/// tree views — the live shards and the pinned snapshot shards run exactly
/// this code.
fn refine_frontiers_over<S, L, V, M, F>(
    shards: &[V],
    make_model: &F,
    query: &[f64],
    order: RefineOrder,
    budget: usize,
) -> Vec<QueryCursor>
where
    S: Summary + Send + Sync,
    L: Send + Sync,
    V: TreeView<S, L> + Sync,
    M: QueryModel<S, LeafItem = L>,
    F: Fn() -> M + Sync,
{
    let mut cursors: Vec<QueryCursor> = (0..shards.len()).map(|_| QueryCursor::new()).collect();
    dispatch_busy(
        shards.iter().zip(cursors.iter_mut()).collect(),
        |shard, _| !shard.node(shard.root()).is_empty(),
        |shard, cursor| {
            let model = make_model();
            shard.begin_query(&model, query, cursor);
            shard.refine_query_up_to(&model, order, budget, cursor);
        },
    );
    cursors
}

/// Per-shard whole-batch refinement folded per query — the generic body of
/// the live and snapshot `query_batch`s.
fn query_batch_over<S, L, V, M, F>(
    shards: &[V],
    make_model: &F,
    queries: &[Vec<f64>],
    order: RefineOrder,
    budget: usize,
) -> (Vec<ShardedQueryAnswer>, QueryStats)
where
    S: Summary + Send + Sync,
    L: Send + Sync,
    V: TreeView<S, L> + Sync,
    M: QueryModel<S, LeafItem = L>,
    F: Fn() -> M + Sync,
{
    let mut per_shard: Vec<Option<(Vec<QueryAnswer>, QueryStats)>> =
        (0..shards.len()).map(|_| None).collect();
    dispatch_busy(
        shards.iter().zip(per_shard.iter_mut()).collect(),
        |shard, _| !shard.node(shard.root()).is_empty(),
        |shard, slot| {
            let model = make_model();
            *slot = Some(shard.query_batch(&model, queries, order, budget));
        },
    );
    fold_query_partials(per_shard, queries.len())
}

/// Folds freshly refined one-shot cursors into the global answer and
/// flushes the query's observations (summed per-shard work counters,
/// folded bound width, wall-clock latency) into the registry — shared by
/// the live and snapshot `query_with_budget`s.
fn fold_one_shot(
    cursors: &[QueryCursor],
    started: Option<std::time::Instant>,
) -> ShardedQueryAnswer {
    let folded = ShardedQueryAnswer::fold(cursors);
    if started.is_some() {
        let mut stats = QueryStats::default();
        for cursor in cursors {
            stats.merge(cursor.stats());
        }
        crate::obs::record_query_answer(&folded.as_answer(), started);
        crate::obs::record_query_stats(&stats);
    }
    folded
}

/// Round-doubling sharded outlier scoring — the generic body of the live
/// and snapshot `outlier_score`s.
fn outlier_score_over<S, L, V, M, F>(
    shards: &[V],
    make_model: &F,
    query: &[f64],
    threshold: f64,
    budget: usize,
) -> OutlierScore
where
    S: Summary + Send + Sync,
    L: Send + Sync,
    V: TreeView<S, L> + Sync,
    M: QueryModel<S, LeafItem = L>,
    F: Fn() -> M + Sync,
{
    // Seed every non-empty shard's frontier without spending budget.
    let started = crate::obs::boundary_timer();
    let mut cursors = refine_frontiers_over(shards, make_model, query, RefineOrder::WidestBound, 0);
    let mut spent = 0usize;
    let mut round = 1usize;
    let mut rounds_done: u32 = 0;
    loop {
        let folded = ShardedQueryAnswer::fold(&cursors);
        let answer = folded.as_answer();
        let verdict = answer.verdict(threshold);
        if rounds_done > 0 {
            crate::obs::record_refine_step(
                rounds_done,
                spent as u64,
                answer.uncertainty(),
                verdict != OutlierVerdict::Undecided,
            );
        }
        let refinable = cursors.iter().any(QueryCursor::can_refine);
        if verdict != OutlierVerdict::Undecided || spent >= budget || !refinable {
            if started.is_some() {
                let mut stats = QueryStats::default();
                for cursor in &cursors {
                    stats.merge(cursor.stats());
                }
                crate::obs::record_verdict(verdict);
                crate::obs::record_query_answer(&answer, started);
                crate::obs::record_query_stats(&stats);
            }
            return OutlierScore { answer, verdict };
        }
        let step = round.min(budget - spent);
        dispatch_busy(
            shards.iter().zip(cursors.iter_mut()).collect(),
            |_, cursor| cursor.can_refine(),
            |shard, cursor| {
                let model = make_model();
                shard.refine_query_up_to(&model, RefineOrder::WidestBound, step, cursor);
            },
        );
        spent += step;
        round = round.saturating_mul(2);
        rounds_done += 1;
    }
}

impl<S: Summary, L, R> ShardedAnytimeTree<S, L, R> {
    /// Refines one query's per-shard frontiers **in parallel** on scoped
    /// threads (each shard up to `budget` node reads) and returns the
    /// per-shard cursors for the caller to fold.
    ///
    /// `make_model` constructs one query model per worker; every model must
    /// share the same global normaliser so partial answers fold by
    /// summation.  Shards that hold no data are skipped (their cursors stay
    /// empty), and when at most one shard holds data the refinement runs
    /// inline — a 1-shard tree performs exactly the single tree's steps.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn refine_frontiers<M, F>(
        &self,
        make_model: &F,
        query: &[f64],
        order: RefineOrder,
        budget: usize,
    ) -> Vec<QueryCursor>
    where
        M: QueryModel<S, LeafItem = L>,
        S: Send + Sync,
        L: Send + Sync,
        F: Fn() -> M + Sync,
    {
        refine_frontiers_over(&self.shards, make_model, query, order, budget)
    }

    /// One-shot sharded query: refines every shard's frontier in parallel
    /// (each up to `budget` node reads) and folds the partials into one
    /// global mixture answer.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn query_with_budget<M, F>(
        &self,
        make_model: &F,
        query: &[f64],
        order: RefineOrder,
        budget: usize,
    ) -> ShardedQueryAnswer
    where
        M: QueryModel<S, LeafItem = L>,
        S: Send + Sync,
        L: Send + Sync,
        F: Fn() -> M + Sync,
    {
        let started = crate::obs::boundary_timer();
        fold_one_shot(
            &self.refine_frontiers(make_model, query, order, budget),
            started,
        )
    }

    /// Refines a batch of queries across all shards: one scoped thread per
    /// shard processes the **whole batch** through one reused cursor (so
    /// thread-spawn cost amortises over the batch and the frontier
    /// allocation is per-shard scratch), then the per-shard partials are
    /// folded per query.  Returns the per-query global answers plus the
    /// merged [`QueryStats`].
    ///
    /// # Panics
    ///
    /// Panics if any query has the wrong dimensionality.
    #[must_use]
    pub fn query_batch<M, F>(
        &self,
        make_model: &F,
        queries: &[Vec<f64>],
        order: RefineOrder,
        budget: usize,
    ) -> (Vec<ShardedQueryAnswer>, QueryStats)
    where
        M: QueryModel<S, LeafItem = L>,
        S: Send + Sync,
        L: Send + Sync,
        F: Fn() -> M + Sync,
    {
        query_batch_over(&self.shards, make_model, queries, order, budget)
    }

    /// Anytime outlier scoring over the sharded index: every shard refines
    /// its density bounds in parallel (widest interval first), the intervals
    /// are folded, and the verdict is taken from the folded global bound.
    ///
    /// Like the single-tree path, this stops early: refinement proceeds in
    /// doubling per-shard rounds with a fold-and-check between rounds, so a
    /// clear-cut verdict costs far less than the full `budget`.  How early
    /// depends on the model's bound tightness: MBR-backed bounds (Bayes
    /// tree, and since PR 5 the micro-cluster's optional MBR) decide
    /// far-away outliers almost immediately, while a distance-blind peak
    /// upper bound resolves inlier verdicts quickly but needs deep
    /// refinement to certify an outlier.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn outlier_score<M, F>(
        &self,
        make_model: &F,
        query: &[f64],
        threshold: f64,
        budget: usize,
    ) -> OutlierScore
    where
        M: QueryModel<S, LeafItem = L>,
        S: Send + Sync,
        L: Send + Sync,
        F: Fn() -> M + Sync,
    {
        outlier_score_over(&self.shards, make_model, query, threshold, budget)
    }
}

/// A point-in-time view of a whole [`ShardedAnytimeTree`]: one pinned
/// [`TreeSnapshot`] per shard, taken together by
/// [`ShardedAnytimeTree::snapshot`].
///
/// `Send + Sync` whenever the payloads are, and answers the full sharded
/// query surface through the same generic engine the live tree uses — the
/// pipelined mode's readers run against exactly this type.
#[derive(Debug, Clone)]
pub struct ShardedTreeSnapshot<S: Summary, L> {
    shards: Vec<TreeSnapshot<S, L>>,
}

impl<S: Summary, L> ShardedTreeSnapshot<S, L> {
    /// Number of shards captured.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard snapshots.
    #[must_use]
    pub fn shards(&self) -> &[TreeSnapshot<S, L>] {
        &self.shards
    }

    /// One shard's snapshot.
    #[must_use]
    pub fn shard(&self, k: usize) -> &TreeSnapshot<S, L> {
        &self.shards[k]
    }

    /// The per-shard epochs this snapshot pins.
    #[must_use]
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(TreeSnapshot::epoch).collect()
    }

    /// Incrementally moves every shard's snapshot forward to `tree`'s
    /// current state ([`TreeSnapshot::refresh`]) and returns the summed
    /// [`SnapshotRefresh`] counters: only the slot chunks and epoch pages
    /// touched since the pins are replaced, shard by shard.
    ///
    /// # Panics
    ///
    /// Panics if `tree` is not the sharded tree this snapshot was taken
    /// from (shard count or epoch registries differ).
    pub fn refresh<R: ShardRouter<S>>(
        &mut self,
        tree: &ShardedAnytimeTree<S, L, R>,
    ) -> SnapshotRefresh {
        assert_eq!(
            self.shards.len(),
            tree.shards.len(),
            "snapshot refreshed against a different sharded tree"
        );
        let mut total = SnapshotRefresh::default();
        for (snapshot, shard) in self.shards.iter_mut().zip(&tree.shards) {
            let report = snapshot.refresh(shard);
            total.chunks_reused += report.chunks_reused;
            total.chunks_refreshed += report.chunks_refreshed;
            total.pages_reused += report.pages_reused;
            total.pages_refreshed += report.pages_refreshed;
        }
        total
    }

    /// Refines one query's per-shard frontiers in parallel against the
    /// frozen shard views and returns the per-shard cursors for the caller
    /// to fold.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn refine_frontiers<M, F>(
        &self,
        make_model: &F,
        query: &[f64],
        order: RefineOrder,
        budget: usize,
    ) -> Vec<QueryCursor>
    where
        M: QueryModel<S, LeafItem = L>,
        S: Send + Sync,
        L: Send + Sync,
        F: Fn() -> M + Sync,
    {
        refine_frontiers_over(&self.shards, make_model, query, order, budget)
    }

    /// One-shot sharded query against the snapshot (see
    /// [`ShardedAnytimeTree::query_with_budget`]).
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn query_with_budget<M, F>(
        &self,
        make_model: &F,
        query: &[f64],
        order: RefineOrder,
        budget: usize,
    ) -> ShardedQueryAnswer
    where
        M: QueryModel<S, LeafItem = L>,
        S: Send + Sync,
        L: Send + Sync,
        F: Fn() -> M + Sync,
    {
        let started = crate::obs::boundary_timer();
        fold_one_shot(
            &self.refine_frontiers(make_model, query, order, budget),
            started,
        )
    }

    /// Batched sharded queries against the snapshot (see
    /// [`ShardedAnytimeTree::query_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if any query has the wrong dimensionality.
    #[must_use]
    pub fn query_batch<M, F>(
        &self,
        make_model: &F,
        queries: &[Vec<f64>],
        order: RefineOrder,
        budget: usize,
    ) -> (Vec<ShardedQueryAnswer>, QueryStats)
    where
        M: QueryModel<S, LeafItem = L>,
        S: Send + Sync,
        L: Send + Sync,
        F: Fn() -> M + Sync,
    {
        query_batch_over(&self.shards, make_model, queries, order, budget)
    }

    /// Anytime outlier scoring against the snapshot (see
    /// [`ShardedAnytimeTree::outlier_score`]).
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn outlier_score<M, F>(
        &self,
        make_model: &F,
        query: &[f64],
        threshold: f64,
        budget: usize,
    ) -> OutlierScore
    where
        M: QueryModel<S, LeafItem = L>,
        S: Send + Sync,
        L: Send + Sync,
        F: Fn() -> M + Sync,
    {
        outlier_score_over(&self.shards, make_model, query, threshold, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Entry, NodeKind};

    /// A minimal distance-routed payload: (weight, component sums).
    #[derive(Debug, Clone, PartialEq)]
    struct Blob {
        weight: f64,
        sum: Vec<f64>,
    }

    impl Blob {
        fn center_of(&self) -> Vec<f64> {
            self.sum.iter().map(|s| s / self.weight).collect()
        }
    }

    impl Summary for Blob {
        type Ctx = ();
        fn merge(&mut self, other: &Self, _ctx: ()) {
            self.weight += other.weight;
            for (a, b) in self.sum.iter_mut().zip(&other.sum) {
                *a += b;
            }
        }
        fn weight(&self) -> f64 {
            self.weight
        }
        fn sq_dist_to(&self, point: &[f64]) -> f64 {
            self.center_of()
                .iter()
                .zip(point)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        }
        fn center(&self) -> Vec<f64> {
            self.center_of()
        }
    }

    /// A buffered model storing blobs directly at leaf level.
    struct BlobModel;

    impl InsertModel<Blob> for BlobModel {
        type Object = Blob;
        type LeafItem = Blob;
        const BUFFERED: bool = true;

        fn ctx(&self) {}
        fn route_point<'a>(&self, obj: &'a Blob, scratch: &'a mut Vec<f64>) -> &'a [f64] {
            scratch.clear();
            scratch.extend(obj.center_of());
            scratch
        }
        fn summary_of(&self, obj: &Blob) -> Blob {
            obj.clone()
        }
        fn absorb_into(&self, summary: &mut Blob, obj: &Blob) {
            summary.merge(obj, ());
        }
        fn merge_buffer_into_object(&self, obj: &mut Blob, buffer: Blob) {
            obj.merge(&buffer, ());
        }
        fn insert_into_leaf(&mut self, items: &mut Vec<Blob>, obj: Blob) {
            items.push(obj);
        }
        fn summarize_leaf_items(&self, items: &[Blob]) -> Blob {
            let mut s = items[0].clone();
            for i in &items[1..] {
                s.merge(i, ());
            }
            s
        }
        fn split_leaf_items(
            &self,
            items: Vec<Blob>,
            geometry: &PageGeometry,
        ) -> (Vec<Blob>, Vec<Blob>) {
            let centers: Vec<Vec<f64>> = items.iter().map(Summary::center).collect();
            let (a, b) = crate::split::polar_partition(&centers, geometry.max_leaf);
            crate::split::distribute(items, &a, &b)
        }
    }

    fn blob(x: f64, y: f64) -> Blob {
        Blob {
            weight: 1.0,
            sum: vec![x, y],
        }
    }

    fn geometry() -> PageGeometry {
        PageGeometry {
            min_fanout: 1,
            max_fanout: 3,
            min_leaf: 1,
            max_leaf: 3,
        }
    }

    fn stream(n: usize) -> Vec<Blob> {
        (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 20.0 };
                blob(c + (i % 5) as f64 * 0.1, c + (i % 7) as f64 * 0.1)
            })
            .collect()
    }

    fn tree_weight(tree: &AnytimeTree<Blob, Blob>) -> f64 {
        let mut total = 0.0;
        for id in tree.reachable() {
            match &tree.node(id).kind {
                NodeKind::Leaf { items } => total += items.iter().map(|b| b.weight).sum::<f64>(),
                NodeKind::Inner { entries } => {
                    total += entries.iter().map(Entry::buffered_weight).sum::<f64>();
                }
            }
        }
        total
    }

    fn sharded_weight<R>(tree: &ShardedAnytimeTree<Blob, Blob, R>) -> f64 {
        tree.shards().iter().map(tree_weight).sum()
    }

    #[test]
    fn single_shard_matches_the_plain_tree() {
        let points = stream(150);
        let mut plain = AnytimeTree::new(2, geometry());
        let mut sharded: ShardedAnytimeTree<Blob, Blob> = ShardedAnytimeTree::new(2, geometry(), 1);
        let mut model = BlobModel;
        for chunk in points.chunks(16) {
            let a = plain.insert_batch(&mut model, chunk.to_vec(), 3);
            let b = sharded.insert_batch(&|| BlobModel, chunk.to_vec(), 3);
            assert_eq!(a.outcomes, b.outcomes);
            assert_eq!(a.depths, b.depths);
            assert_eq!(a.stats, b.stats);
            assert_eq!(b.objects_per_shard, vec![chunk.len()]);
        }
        assert_eq!(plain.num_nodes(), sharded.num_nodes());
        assert_eq!(plain.height(), sharded.height());
        assert_eq!(plain.stats(), &sharded.stats());
        assert!((tree_weight(&plain) - sharded_weight(&sharded)).abs() < 1e-9);
    }

    #[test]
    fn fixed_partition_router_deals_round_robin() {
        let mut sharded: ShardedAnytimeTree<Blob, Blob, FixedPartitionRouter> =
            ShardedAnytimeTree::new(2, geometry(), 3);
        let result = sharded.insert_batch(&|| BlobModel, stream(31), usize::MAX);
        assert_eq!(result.objects_per_shard, vec![11, 10, 10]);
        assert_eq!(result.outcomes.len(), 31);
        assert_eq!(result.depths.total(), 31);
        // The next batch continues the rotation where the last one stopped.
        let result = sharded.insert_batch(&|| BlobModel, stream(2), usize::MAX);
        assert_eq!(result.objects_per_shard, vec![0, 1, 1]);
    }

    #[test]
    fn cheapest_router_seeds_every_shard_then_routes_by_distance() {
        let mut sharded: ShardedAnytimeTree<Blob, Blob> = ShardedAnytimeTree::new(2, geometry(), 2);
        let model = BlobModel;
        // First two objects seed the two empty shards in order.
        assert_eq!(sharded.route_object(&model, &blob(0.0, 0.0)), 0);
        assert_eq!(sharded.route_object(&model, &blob(20.0, 20.0)), 1);
        // From now on distance decides.
        assert_eq!(sharded.route_object(&model, &blob(1.0, 1.0)), 0);
        assert_eq!(sharded.route_object(&model, &blob(19.0, 19.0)), 1);
        assert!(sharded.aggregates().iter().all(Option::is_some));
    }

    #[test]
    fn parallel_batches_conserve_mass_and_merge_reports() {
        let points = stream(320);
        let mut sharded: ShardedAnytimeTree<Blob, Blob> = ShardedAnytimeTree::new(2, geometry(), 4);
        let mut total_stats = DescentStats::default();
        for chunk in points.chunks(64) {
            let result = sharded.insert_batch(&|| BlobModel, chunk.to_vec(), usize::MAX);
            assert_eq!(result.outcomes.len(), chunk.len());
            assert_eq!(result.depths.total(), chunk.len());
            assert_eq!(result.depths.reached_leaf, chunk.len());
            assert_eq!(result.objects_per_shard.iter().sum::<usize>(), chunk.len());
            total_stats.merge(&result.stats);
        }
        assert!((sharded_weight(&sharded) - 320.0).abs() < 1e-9);
        // The merged per-batch deltas add up to the merged per-shard totals.
        assert_eq!(total_stats, sharded.stats());
        // Every shard saw work: two clusters spread over four seeded shards.
        for shard in sharded.shards() {
            assert!(shard.stats().batches > 0);
        }
    }

    #[test]
    fn empty_batches_are_no_ops_on_both_paths() {
        let mut plain = AnytimeTree::new(2, geometry());
        let mut sharded: ShardedAnytimeTree<Blob, Blob> = ShardedAnytimeTree::new(2, geometry(), 1);
        let mut model = BlobModel;
        let a = plain.insert_batch(&mut model, Vec::new(), 3);
        let b = sharded.insert_batch(&|| BlobModel, Vec::new(), 3);
        assert!(a.outcomes.is_empty() && b.outcomes.is_empty());
        assert_eq!(a.stats, DescentStats::default());
        assert_eq!(plain.stats(), &sharded.stats());
        assert_eq!(plain.stats(), &DescentStats::default());
    }

    #[test]
    fn zero_budget_batches_park_across_shards() {
        let mut sharded: ShardedAnytimeTree<Blob, Blob> = ShardedAnytimeTree::new(2, geometry(), 2);
        let _ = sharded.insert_batch(&|| BlobModel, stream(60), usize::MAX);
        assert!(sharded.height() > 1);
        let result = sharded.insert_batch(&|| BlobModel, stream(8), 0);
        assert_eq!(result.depths.reached_leaf, 0);
        assert_eq!(result.depths.parked_total(), 8);
        assert!((sharded_weight(&sharded) - 68.0).abs() < 1e-9);
    }

    #[test]
    fn single_object_insert_routes_and_descends() {
        let mut sharded: ShardedAnytimeTree<Blob, Blob> = ShardedAnytimeTree::new(2, geometry(), 2);
        let mut model = BlobModel;
        for p in stream(40) {
            let outcome = sharded.insert(&mut model, p, usize::MAX);
            assert_eq!(outcome, InsertOutcome::ReachedLeaf);
        }
        assert!((sharded_weight(&sharded) - 40.0).abs() < 1e-9);
        assert_eq!(sharded.stats().batches, 40);
    }

    #[test]
    fn sharded_trees_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<AnytimeTree<Blob, Blob>>();
        assert_send::<crate::DescentCursor<Blob>>();
        assert_send::<crate::QueryCursor>();
        assert_send::<ShardedAnytimeTree<Blob, Blob, CheapestRouter>>();
        assert_send::<ShardedAnytimeTree<Blob, Blob, FixedPartitionRouter>>();
    }

    /// A toy density model over blobs: `w/n * exp(-d²)` with trivially
    /// nested bounds `(0, w/n)`; exact at leaf level.
    struct BlobQueryModel {
        n: f64,
    }

    impl QueryModel<Blob> for BlobQueryModel {
        type LeafItem = Blob;
        fn summary_contribution(&self, query: &[f64], summary: &Blob) -> f64 {
            summary.weight / self.n * (-summary.sq_dist_to(query)).exp()
        }
        fn summary_bounds(&self, _query: &[f64], summary: &Blob) -> (f64, f64) {
            (0.0, summary.weight / self.n)
        }
        fn leaf_contribution(&self, query: &[f64], item: &Blob) -> f64 {
            self.summary_contribution(query, item)
        }
        fn leaf_sq_dist(&self, query: &[f64], item: &Blob) -> f64 {
            item.sq_dist_to(query)
        }
        fn leaf_weight(&self, item: &Blob) -> f64 {
            item.weight
        }
        fn summarize_leaf_items(&self, items: &[Blob]) -> Blob {
            let mut s = items[0].clone();
            for i in &items[1..] {
                s.merge(i, ());
            }
            s
        }
    }

    #[test]
    fn shard_sizes_track_routing() {
        let mut sharded: ShardedAnytimeTree<Blob, Blob, FixedPartitionRouter> =
            ShardedAnytimeTree::new(2, geometry(), 3);
        assert_eq!(sharded.shard_sizes(), &[0, 0, 0]);
        let _ = sharded.insert_batch(&|| BlobModel, stream(31), usize::MAX);
        assert_eq!(sharded.shard_sizes(), &[11, 10, 10]);
        let _ = sharded.insert_batch(&|| BlobModel, stream(2), usize::MAX);
        assert_eq!(sharded.shard_sizes(), &[11, 11, 11]);
    }

    #[test]
    fn one_shard_query_matches_the_plain_tree() {
        let points = stream(150);
        let mut plain = AnytimeTree::new(2, geometry());
        let mut sharded: ShardedAnytimeTree<Blob, Blob> = ShardedAnytimeTree::new(2, geometry(), 1);
        let mut model = BlobModel;
        for chunk in points.chunks(16) {
            let _ = plain.insert_batch(&mut model, chunk.to_vec(), 3);
            let _ = sharded.insert_batch(&|| BlobModel, chunk.to_vec(), 3);
        }
        let query = [1.0, 1.0];
        for budget in [0usize, 1, 3, 8, usize::MAX] {
            let reference = plain.query_with_budget(
                &BlobQueryModel { n: 150.0 },
                &query,
                RefineOrder::BestFirst,
                budget,
            );
            let folded = sharded.query_with_budget(
                &|| BlobQueryModel { n: 150.0 },
                &query,
                RefineOrder::BestFirst,
                budget,
            );
            assert_eq!(folded.as_answer(), reference, "budget {budget}");
            assert_eq!(folded.per_shard_nodes, vec![reference.nodes_read]);
        }
    }

    #[test]
    fn sharded_query_folds_the_full_mixture() {
        // Fully refined, the partition is invisible: the folded sum over
        // shards equals the plain tree's fully refined sum.
        let points = stream(200);
        let mut plain = AnytimeTree::new(2, geometry());
        let mut sharded: ShardedAnytimeTree<Blob, Blob> = ShardedAnytimeTree::new(2, geometry(), 4);
        let mut model = BlobModel;
        for chunk in points.chunks(32) {
            let _ = plain.insert_batch(&mut model, chunk.to_vec(), usize::MAX);
            let _ = sharded.insert_batch(&|| BlobModel, chunk.to_vec(), usize::MAX);
        }
        let make_model = || BlobQueryModel { n: 200.0 };
        for query in [[0.1, 0.2], [20.0, 20.1], [10.0, 10.0]] {
            let reference =
                plain.query_with_budget(&make_model(), &query, RefineOrder::BestFirst, usize::MAX);
            let folded =
                sharded.query_with_budget(&make_model, &query, RefineOrder::BestFirst, usize::MAX);
            assert!(
                (folded.estimate - reference.estimate).abs() <= 1e-12 * (1.0 + reference.estimate),
                "estimate mismatch at {query:?}"
            );
            assert!(folded.uncertainty() < 1e-12);
        }
        // Batched multi-query path agrees with the one-shot path.
        let queries: Vec<Vec<f64>> = vec![vec![0.1, 0.2], vec![20.0, 20.1]];
        let (answers, stats) =
            sharded.query_batch(&make_model, &queries, RefineOrder::BestFirst, 5);
        assert_eq!(answers.len(), 2);
        assert_eq!(stats.queries, 2 * 4); // every busy shard begins every query
        for (answer, query) in answers.iter().zip(&queries) {
            let one_shot = sharded.query_with_budget(&make_model, query, RefineOrder::BestFirst, 5);
            assert_eq!(answer, &one_shot);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _: ShardedAnytimeTree<Blob, Blob> = ShardedAnytimeTree::new(2, geometry(), 0);
    }
}
