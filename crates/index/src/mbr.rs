//! Minimum bounding rectangles and their R*-tree geometry.
//!
//! Every Bayes-tree entry stores the MBR of the objects in its subtree
//! (Definition 1).  The geometric measures here are the standard R*-tree
//! ones: area, margin, overlap, enlargement needed to include a point or
//! rectangle, and MINDIST (the geometric descent priority evaluated in the
//! paper's global-best strategy).

/// An axis-aligned minimum bounding rectangle in `d` dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Mbr {
    /// Creates an MBR from explicit lower and upper corners.
    ///
    /// # Panics
    ///
    /// Panics if the corners have different lengths, are empty, or any lower
    /// coordinate exceeds the corresponding upper coordinate.
    #[must_use]
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "corner dimensionality mismatch");
        assert!(!lower.is_empty(), "MBR must have at least one dimension");
        assert!(
            lower.iter().zip(&upper).all(|(l, u)| l <= u),
            "lower corner must not exceed upper corner"
        );
        Self { lower, upper }
    }

    /// Creates a degenerate MBR containing a single point.
    #[must_use]
    pub fn from_point(point: &[f64]) -> Self {
        Self {
            lower: point.to_vec(),
            upper: point.to_vec(),
        }
    }

    /// Creates the MBR of a set of points.
    ///
    /// Returns `None` for an empty iterator.
    #[must_use]
    pub fn from_points<'a, I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut mbr = Self::from_point(first);
        for p in iter {
            mbr.extend_point(p);
        }
        Some(mbr)
    }

    /// Creates the MBR enclosing a set of MBRs.
    ///
    /// Returns `None` for an empty iterator.
    #[must_use]
    pub fn union_all<'a, I>(mbrs: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a Mbr>,
    {
        let mut iter = mbrs.into_iter();
        let mut acc = iter.next()?.clone();
        for m in iter {
            acc.extend_mbr(m);
        }
        Some(acc)
    }

    /// Dimensionality of the rectangle.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.lower.len()
    }

    /// Lower corner.
    #[must_use]
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper corner.
    #[must_use]
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Centre point of the rectangle.
    #[must_use]
    pub fn center(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(l, u)| 0.5 * (l + u))
            .collect()
    }

    /// Grows the rectangle to contain `point`.
    pub fn extend_point(&mut self, point: &[f64]) {
        debug_assert_eq!(point.len(), self.dims());
        for ((lo, hi), &p) in self.lower.iter_mut().zip(&mut self.upper).zip(point) {
            *lo = lo.min(p);
            *hi = hi.max(p);
        }
    }

    /// Grows the rectangle to contain `other`.
    pub fn extend_mbr(&mut self, other: &Mbr) {
        debug_assert_eq!(other.dims(), self.dims());
        for d in 0..self.dims() {
            self.lower[d] = self.lower[d].min(other.lower[d]);
            self.upper[d] = self.upper[d].max(other.upper[d]);
        }
    }

    /// The union of this rectangle and `other` as a new rectangle.
    #[must_use]
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut m = self.clone();
        m.extend_mbr(other);
        m
    }

    /// Whether `point` lies inside (or on the boundary of) the rectangle.
    #[must_use]
    pub fn contains_point(&self, point: &[f64]) -> bool {
        debug_assert_eq!(point.len(), self.dims());
        point
            .iter()
            .enumerate()
            .all(|(d, x)| *x >= self.lower[d] && *x <= self.upper[d])
    }

    /// Whether `other` is fully contained in this rectangle.
    #[must_use]
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        (0..self.dims()).all(|d| other.lower[d] >= self.lower[d] && other.upper[d] <= self.upper[d])
    }

    /// Whether the two rectangles intersect.
    #[must_use]
    pub fn intersects(&self, other: &Mbr) -> bool {
        (0..self.dims()).all(|d| self.lower[d] <= other.upper[d] && other.lower[d] <= self.upper[d])
    }

    /// Volume (area in 2-d) of the rectangle.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(l, u)| u - l)
            .product()
    }

    /// Margin: the sum of the edge lengths (the R* split criterion).
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.lower.iter().zip(&self.upper).map(|(l, u)| u - l).sum()
    }

    /// Volume of the intersection with `other` (0 when disjoint).
    #[must_use]
    pub fn overlap(&self, other: &Mbr) -> f64 {
        let mut acc = 1.0;
        for d in 0..self.dims() {
            let lo = self.lower[d].max(other.lower[d]);
            let hi = self.upper[d].min(other.upper[d]);
            if hi <= lo {
                return 0.0;
            }
            acc *= hi - lo;
        }
        acc
    }

    /// Increase in area needed to include `point`.
    #[must_use]
    pub fn enlargement_for_point(&self, point: &[f64]) -> f64 {
        let mut grown = self.clone();
        grown.extend_point(point);
        grown.area() - self.area()
    }

    /// Increase in area needed to include `other`.
    #[must_use]
    pub fn enlargement_for_mbr(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// MINDIST: squared Euclidean distance from `point` to the nearest point
    /// of the rectangle (0 when the point is inside).
    ///
    /// This is the *geometric* descent priority evaluated in Section 2.2.
    #[must_use]
    pub fn min_dist_sq(&self, point: &[f64]) -> f64 {
        debug_assert_eq!(point.len(), self.dims());
        let mut acc = 0.0;
        for ((&lo, &hi), &x) in self.lower.iter().zip(&self.upper).zip(point) {
            let diff = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            acc += diff * diff;
        }
        acc
    }

    /// Edge length along dimension `d`.
    #[must_use]
    pub fn extent(&self, d: usize) -> f64 {
        self.upper[d] - self.lower[d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Mbr {
        Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0])
    }

    #[test]
    fn from_points_bounds_everything() {
        let pts: Vec<Vec<f64>> = vec![vec![0.0, 5.0], vec![2.0, -1.0], vec![1.0, 3.0]];
        let mbr = Mbr::from_points(pts.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(mbr.lower(), &[0.0, -1.0][..]);
        assert_eq!(mbr.upper(), &[2.0, 5.0][..]);
        for p in &pts {
            assert!(mbr.contains_point(p));
        }
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Mbr::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn area_margin_center() {
        let m = Mbr::new(vec![0.0, 0.0], vec![2.0, 3.0]);
        assert_eq!(m.area(), 6.0);
        assert_eq!(m.margin(), 5.0);
        assert_eq!(m.center(), vec![1.0, 1.5]);
    }

    #[test]
    fn overlap_of_disjoint_is_zero() {
        let a = unit_square();
        let b = Mbr::new(vec![2.0, 2.0], vec![3.0, 3.0]);
        assert_eq!(a.overlap(&b), 0.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn overlap_of_half_shifted_squares() {
        let a = unit_square();
        let b = Mbr::new(vec![0.5, 0.0], vec![1.5, 1.0]);
        assert!((a.overlap(&b) - 0.5).abs() < 1e-12);
        assert!(a.intersects(&b));
    }

    #[test]
    fn enlargement_for_contained_point_is_zero() {
        let a = unit_square();
        assert_eq!(a.enlargement_for_point(&[0.5, 0.5]), 0.0);
        assert!(a.enlargement_for_point(&[2.0, 0.5]) > 0.0);
    }

    #[test]
    fn min_dist_inside_is_zero_outside_positive() {
        let a = unit_square();
        assert_eq!(a.min_dist_sq(&[0.5, 0.5]), 0.0);
        assert!((a.min_dist_sq(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((a.min_dist_sq(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn union_contains_both() {
        let a = unit_square();
        let b = Mbr::new(vec![3.0, 3.0], vec![4.0, 4.0]);
        let u = a.union(&b);
        assert!(u.contains_mbr(&a));
        assert!(u.contains_mbr(&b));
    }

    #[test]
    fn extend_point_grows_minimally() {
        let mut a = unit_square();
        a.extend_point(&[2.0, 0.5]);
        assert_eq!(a.upper(), &[2.0, 1.0][..]);
        assert_eq!(a.lower(), &[0.0, 0.0][..]);
    }

    #[test]
    #[should_panic(expected = "lower corner must not exceed")]
    fn inverted_corners_panic() {
        let _ = Mbr::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn degenerate_point_mbr() {
        let m = Mbr::from_point(&[1.0, 2.0]);
        assert_eq!(m.area(), 0.0);
        assert!(m.contains_point(&[1.0, 2.0]));
        assert_eq!(m.min_dist_sq(&[1.0, 2.0]), 0.0);
    }
}
