//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements just enough of the criterion 0.5 API for the workspace's bench
//! targets to compile and produce useful (if statistically simple) numbers:
//! a fixed number of timed iterations per benchmark with a mean and min
//! report printed to stdout.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

/// Maximum measurement time spent per benchmark.
const MAX_MEASURE_TIME: Duration = Duration::from_secs(3);
/// Target number of timed samples per benchmark.
const TARGET_SAMPLES: u32 = 20;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().id, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration, for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Caps the number of samples (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark that closes over an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.throughput, &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: function name plus parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id consisting of the parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        Self { id: value.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Declared per-iteration work, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Handed to every benchmark closure; times the routine it is given.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, repeating it until enough samples were collected.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up execution outside the measurement.
        std::hint::black_box(routine());
        let started = Instant::now();
        for _ in 0..TARGET_SAMPLES {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if started.elapsed() > MAX_MEASURE_TIME {
                break;
            }
        }
    }
}

fn run_benchmark(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {name}: no samples");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!(" ({:.0} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "  {name}: mean {mean:?}, min {min:?} over {} samples{rate}",
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into a single named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
