//! Criterion bench: cost of a single frontier refinement step (the paper's
//! claim that the incremental density update after reading one node is very
//! cheap) and of full probability density queries at different levels.

use bayestree::pdq::density_at_level;
use bayestree::{build_tree, BulkLoadMethod, DescentStrategy, TreeFrontier};
use bt_data::synth::Benchmark;
use bt_index::PageGeometry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn pdq_benchmarks(c: &mut Criterion) {
    let dataset = Benchmark::Pendigits.generate(3_000, 5);
    let dims = dataset.dims();
    let points = dataset.features_of_class(0);
    let tree = build_tree(
        &points,
        dims,
        PageGeometry::default_for_dims(dims),
        BulkLoadMethod::EmTopDown,
        1,
    );
    let query = dataset.feature(1).to_vec();

    let mut group = c.benchmark_group("pdq");
    group.bench_function("refine_50_nodes", |b| {
        b.iter(|| {
            let mut frontier = TreeFrontier::new(&tree, black_box(&query));
            frontier.refine_up_to(50, DescentStrategy::default());
            black_box(frontier.density())
        })
    });
    for level in [0usize, 1, 2] {
        group.bench_with_input(
            BenchmarkId::new("level_density", level),
            &level,
            |b, &level| b.iter(|| black_box(density_at_level(&tree, black_box(&query), level))),
        );
    }
    group.bench_function("full_kernel_density", |b| {
        b.iter(|| black_box(tree.full_kernel_density(black_box(&query))))
    });
    group.finish();
}

criterion_group!(benches, pdq_benchmarks);
criterion_main!(benches);
