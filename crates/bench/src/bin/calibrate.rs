//! Calibration helper (not a paper experiment): sweeps the synthetic
//! generator's spread and cluster-count parameters for one benchmark shape
//! and reports root-level vs fully-refined anytime accuracy for the EMTopDown
//! and iterative trees.  Used to pick the generator parameters that put the
//! stand-ins into the same difficulty regime as the paper's data sets.
//!
//! Usage: `calibrate <classes> <features> <train_per_class> [--spreads a,b,c]
//!         [--clusters a,b,c] [--separation s]`

use bayestree::BulkLoadMethod;
use bayestree_bench::RunOptions;
use bt_data::synth::ClassMixtureConfig;
use bt_eval::curve::anytime_accuracy_curve;
use bt_eval::CurveConfig;

fn parse_list(s: &str) -> Vec<f64> {
    s.split(',').map(|x| x.parse().expect("number")).collect()
}

fn main() {
    // Strip the calibration-specific flags before handing the rest to the
    // shared option parser.
    let raw_all: Vec<String> = std::env::args().skip(1).collect();
    let mut filtered = Vec::new();
    let mut skip = false;
    for (i, a) in raw_all.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if matches!(
            a.as_str(),
            "--spreads" | "--clusters" | "--separation" | "--curvature"
        ) {
            skip = true;
            continue;
        }
        let _ = i;
        filtered.push(a.clone());
    }
    let options = RunOptions::parse(filtered);
    let args = &options.positional;
    let classes: usize = args.first().map_or(10, |s| s.parse().unwrap());
    let features: usize = args.get(1).map_or(16, |s| s.parse().unwrap());
    let per_class: usize = args.get(2).map_or(300, |s| s.parse().unwrap());

    let mut spreads = vec![8.0, 12.0, 16.0, 20.0, 24.0];
    let mut clusters = vec![3.0, 6.0, 10.0];
    let mut separation = 100.0;
    let mut curvature = 0.0;
    let raw: Vec<String> = std::env::args().collect();
    for i in 0..raw.len() {
        match raw[i].as_str() {
            "--spreads" => spreads = parse_list(&raw[i + 1]),
            "--clusters" => clusters = parse_list(&raw[i + 1]),
            "--separation" => separation = raw[i + 1].parse().unwrap(),
            "--curvature" => curvature = raw[i + 1].parse().unwrap(),
            _ => {}
        }
    }

    let curve_config = CurveConfig {
        max_nodes: options.max_nodes,
        folds: 4,
        seed: options.seed,
        max_test_queries: Some(options.queries),
        ..CurveConfig::default()
    };

    println!("classes {classes}, features {features}, {per_class} objects/class, separation {separation}, curvature {curvature}");
    println!("clusters  spread  | EM@0   EM@25  EM@end | It@0   It@25  It@end");
    println!("--------  ------  | -----  -----  ------ | -----  -----  ------");
    for &k in &clusters {
        for &spread in &spreads {
            let mut cfg = ClassMixtureConfig::new("calibrate", classes, features);
            cfg.clusters_per_class = k as usize;
            cfg.separation = separation;
            cfg.spread = spread;
            cfg.curvature = curvature;
            cfg.seed = options.seed;
            let dataset = cfg.generate(per_class * classes);

            let em = anytime_accuracy_curve(&dataset, BulkLoadMethod::EmTopDown, &curve_config);
            let it = anytime_accuracy_curve(&dataset, BulkLoadMethod::Iterative, &curve_config);
            println!(
                "{:>8}  {:>6.1}  | {:.3}  {:.3}  {:.3}  | {:.3}  {:.3}  {:.3}",
                k as usize,
                spread,
                em.at(0),
                em.at(25),
                em.final_accuracy,
                it.at(0),
                it.at(25),
                it.final_accuracy
            );
        }
    }
}
