//! The insertion policy: the handful of decisions that differ per workload.

use crate::summary::Summary;
use bt_index::PageGeometry;

/// Workload-specific policy driving [`crate::AnytimeTree::insert`].
///
/// The shared core owns the descent loop, buffer bookkeeping and split
/// propagation; the model supplies what genuinely differs between the Bayes
/// tree and the clustering extension:
///
/// * what descends (`Object`) and what leaves store (`LeafItem`),
/// * how an object is absorbed into ancestor summaries,
/// * the leaf insertion policy (append raw points vs. absorb / reuse
///   micro-cluster slots),
/// * how overfull leaves split, and what to do when splitting is not
///   allowed,
/// * whether hitchhiker buffering is enabled and what one descent step
///   costs.
pub trait InsertModel<S: Summary> {
    /// The object descending the tree (a raw point for the Bayes tree, a
    /// one-point micro-cluster for the clustering extension).
    type Object;
    /// What leaf nodes store.
    type LeafItem;

    /// Whether hitchhiker/park buffers are in use.  When `false` the budget
    /// is ignored and every insertion descends to a leaf.
    const BUFFERED: bool = false;

    /// The context threaded through summary merges and refreshes.
    fn ctx(&self) -> S::Ctx;

    /// The point used to route `obj` through directory nodes.  `scratch` is
    /// a reusable buffer for models whose routing point must be computed
    /// (e.g. a micro-cluster centre); models that can borrow from the object
    /// may ignore it.
    fn route_point<'a>(&self, obj: &'a Self::Object, scratch: &'a mut Vec<f64>) -> &'a [f64];

    /// A standalone summary of `obj`, used to seed an empty hitchhiker
    /// buffer when the object is parked.
    fn summary_of(&self, obj: &Self::Object) -> S;

    /// Absorbs `obj` into an existing summary (an ancestor entry or an
    /// occupied buffer) without allocating.
    fn absorb_into(&self, summary: &mut S, obj: &Self::Object);

    /// Merges a picked-up hitchhiker buffer into the descending object.
    fn merge_buffer_into_object(&self, _obj: &mut Self::Object, _buffer: S) {}

    /// Brings leaf items up to date before insertion (e.g. applies decay).
    fn refresh_leaf_items(&self, _items: &mut [Self::LeafItem]) {}

    /// Inserts `obj` into a leaf.  May leave the leaf over capacity; the
    /// core then splits it (or calls
    /// [`collapse_leaf_items`](InsertModel::collapse_leaf_items) when
    /// splitting is not allowed).
    fn insert_into_leaf(&mut self, items: &mut Vec<Self::LeafItem>, obj: Self::Object);

    /// The summary describing a (non-empty) set of leaf items.
    fn summarize_leaf_items(&self, items: &[Self::LeafItem]) -> S;

    /// Splits the items of an overfull leaf into the group that stays and
    /// the group that moves to a fresh node.
    fn split_leaf_items(
        &self,
        items: Vec<Self::LeafItem>,
        geometry: &PageGeometry,
    ) -> (Vec<Self::LeafItem>, Vec<Self::LeafItem>);

    /// Brings an overfull leaf back within capacity when splitting is not
    /// allowed (e.g. by merging the closest pair of micro-clusters).
    fn collapse_leaf_items(&self, _items: &mut Vec<Self::LeafItem>) {}

    /// Whether an overflowing node may split right now.  `has_time` reports
    /// whether the insertion still had budget at that node.
    fn may_split(&self, _has_time: bool) -> bool {
        true
    }

    /// Budget spent per descent step (node read).  The default of 1 matches
    /// the paper's cost model; heavier workloads can charge more per level.
    fn step_cost(&self) -> usize {
        1
    }
}
