//! EM top-down bulk load (Section 3.1) — the paper's best performer.
//!
//! The training set is recursively partitioned: the EM algorithm is applied
//! to the current set with the fanout `M` as the desired number of clusters;
//! if EM collapses to fewer than the minimum fanout the biggest cluster is
//! split further; a single-cluster result is split on its two farthest
//! elements.  Clusters with more than `L` objects are partitioned
//! recursively and become subtrees, smaller clusters become leaf nodes.
//!
//! The resulting tree may be unbalanced — the paper notes this explicitly
//! and observes that it is not a drawback but even improves anytime
//! accuracy.

use crate::node::{Entry, NodeId};
use crate::tree::BayesTree;
use bt_index::PageGeometry;
use bt_stats::em::{fit_gmm, EmConfig, KMeans, KMeansConfig};
use bt_stats::vector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a Bayes tree with the EM top-down bulk load.
#[must_use]
pub fn build_em_topdown(
    points: &[Vec<f64>],
    dims: usize,
    geometry: PageGeometry,
    seed: u64,
) -> BayesTree {
    let mut tree: BayesTree = BayesTree::new(dims, geometry);
    if points.is_empty() {
        return tree;
    }
    let mut rng = StdRng::seed_from_u64(seed);

    if points.len() <= geometry.max_leaf {
        // Everything fits into the root leaf.
        let root = tree.push_node(bt_anytree::Node::leaf(points.to_vec()));
        tree.set_root(root, 1);
    } else {
        let owned: Vec<Vec<f64>> = points.to_vec();
        let (root_id, depth) = build_recursive(&mut tree, owned, &mut rng);
        tree.set_root(root_id, depth);
    }
    tree.set_num_points(points.len());
    // The single commit point of the EM top-down load.
    tree.publish_bulk_epoch();
    tree.fit_bandwidth();
    tree
}

/// Recursively builds the subtree over `points`; returns the node id and the
/// height of that subtree.
fn build_recursive(
    tree: &mut BayesTree,
    points: Vec<Vec<f64>>,
    rng: &mut StdRng,
) -> (NodeId, usize) {
    let geometry = tree.geometry();
    if points.len() <= geometry.max_leaf {
        let node = tree.push_node(bt_anytree::Node::leaf(points));
        return (node, 1);
    }

    let clusters = cluster_points(&points, &geometry, rng);

    let mut entries: Vec<Entry> = Vec::with_capacity(clusters.len());
    let mut max_child_height = 0usize;
    for cluster in clusters {
        if cluster.is_empty() {
            continue;
        }
        let cluster_points: Vec<Vec<f64>> = cluster.iter().map(|&i| points[i].clone()).collect();
        let (child, child_height) = if cluster_points.len() > geometry.max_leaf {
            build_recursive(tree, cluster_points, rng)
        } else {
            (tree.push_node(bt_anytree::Node::leaf(cluster_points)), 1)
        };
        max_child_height = max_child_height.max(child_height);
        entries.push(tree.summarise(child));
    }

    let node = tree.push_node(bt_anytree::Node::inner(entries));
    (node, max_child_height + 1)
}

/// Clusters `points` into at most `M` groups following the paper's rules.
fn cluster_points(
    points: &[Vec<f64>],
    geometry: &PageGeometry,
    rng: &mut StdRng,
) -> Vec<Vec<usize>> {
    let desired = geometry.max_fanout;
    let em = fit_gmm(points, &EmConfig::new(desired), rng);
    let mut clusters = group_by_assignment(&em.assignment, em.mixture.len().max(1));
    clusters.retain(|c| !c.is_empty());

    if clusters.len() <= 1 {
        // EM collapsed to a single cluster: split on the two farthest
        // elements and assign the rest to the closer of the two.
        return farthest_pair_split(points);
    }

    // If EM returned fewer than the minimum fanout, keep splitting the
    // biggest cluster until we reach it (or cannot split further).
    while clusters.len() < geometry.min_fanout && clusters.len() < desired {
        let (biggest_idx, _) = clusters
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.len())
            .expect("at least one cluster");
        if clusters[biggest_idx].len() < 2 {
            break;
        }
        let members = clusters.swap_remove(biggest_idx);
        let member_points: Vec<Vec<f64>> = members.iter().map(|&i| points[i].clone()).collect();
        let km = KMeans::fit(&member_points, &KMeansConfig::new(2), rng);
        if km.num_clusters() < 2 {
            // Identical points: put the cluster back and stop.
            clusters.push(members);
            break;
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (local, &global) in members.iter().enumerate() {
            if km.assignment[local] == 0 {
                a.push(global);
            } else {
                b.push(global);
            }
        }
        clusters.push(a);
        clusters.push(b);
    }
    clusters
}

/// Groups point indices by their cluster assignment.
fn group_by_assignment(assignment: &[usize], num_clusters: usize) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); num_clusters];
    for (i, &a) in assignment.iter().enumerate() {
        groups[a.min(num_clusters - 1)].push(i);
    }
    groups
}

/// Splits a point set on its two farthest elements (used when EM returns a
/// single cluster).  The farthest pair is approximated by two passes of the
/// "pick the point farthest from the current pivot" heuristic.
fn farthest_pair_split(points: &[Vec<f64>]) -> Vec<Vec<usize>> {
    if points.len() < 2 {
        return vec![(0..points.len()).collect()];
    }
    let first = farthest_from(points, &points[0]);
    let second = farthest_from(points, &points[first]);
    let a = &points[first];
    let b = &points[second];
    if vector::sq_dist(a, b) == 0.0 {
        // All points identical: cut in half.
        let mid = points.len() / 2;
        return vec![(0..mid).collect(), (mid..points.len()).collect()];
    }
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, p) in points.iter().enumerate() {
        if vector::sq_dist(p, a) <= vector::sq_dist(p, b) {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    vec![left, right]
}

fn farthest_from(points: &[Vec<f64>], pivot: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = -1.0;
    for (i, p) in points.iter().enumerate() {
        let d = vector::sq_dist(p, pivot);
        if d > best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn clustered_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = (i % 5) as f64 * 20.0;
                vec![c + rng.random::<f64>(), c * 0.5 + rng.random::<f64>()]
            })
            .collect()
    }

    #[test]
    fn em_topdown_tree_is_valid() {
        let pts = clustered_points(400, 1);
        let tree = build_em_topdown(&pts, 2, PageGeometry::from_fanout(5, 10), 7);
        assert_eq!(tree.len(), 400);
        // May be unbalanced by design — validate without the balance check.
        tree.validate(false).expect("consistent EMTopDown tree");
    }

    #[test]
    fn small_input_is_a_single_leaf() {
        let pts = clustered_points(8, 2);
        let tree = build_em_topdown(&pts, 2, PageGeometry::from_fanout(4, 10), 1);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.len(), 8);
    }

    #[test]
    fn clusters_end_up_in_separate_subtrees() {
        // Two far-apart clusters: no root entry should span both.
        let mut pts = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            pts.push(vec![rng.random::<f64>(), rng.random::<f64>()]);
        }
        for _ in 0..100 {
            pts.push(vec![
                500.0 + rng.random::<f64>(),
                500.0 + rng.random::<f64>(),
            ]);
        }
        let tree = build_em_topdown(&pts, 2, PageGeometry::from_fanout(4, 16), 5);
        for e in tree.root_entries() {
            let spans_both = e.mbr.lower()[0] < 250.0 && e.mbr.upper()[0] > 250.0;
            assert!(!spans_both, "a root entry spans both clusters");
        }
    }

    #[test]
    fn farthest_pair_split_separates_extremes() {
        let pts = vec![vec![0.0], vec![0.1], vec![9.9], vec![10.0]];
        let split = farthest_pair_split(&pts);
        assert_eq!(split.len(), 2);
        let left: &Vec<usize> = &split[0];
        let right: &Vec<usize> = &split[1];
        assert_eq!(left.len() + right.len(), 4);
        // The two extremes must be separated.
        let zero_side = left.contains(&0);
        assert_ne!(zero_side, left.contains(&3));
    }

    #[test]
    fn farthest_pair_split_identical_points() {
        let pts = vec![vec![1.0]; 6];
        let split = farthest_pair_split(&pts);
        let total: usize = split.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        assert_eq!(split.len(), 2);
    }

    #[test]
    fn identical_points_build_without_hanging() {
        let pts = vec![vec![2.0, 2.0]; 100];
        let tree = build_em_topdown(&pts, 2, PageGeometry::from_fanout(4, 8), 1);
        assert_eq!(tree.len(), 100);
        tree.validate(false).expect("valid");
    }
}
