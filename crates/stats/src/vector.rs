//! Small dense-vector helpers shared across the workspace.
//!
//! Points are plain `&[f64]` slices.  These helpers keep the arithmetic in one
//! place so that the Bayes tree, the clustering extension and the workload
//! generators all agree on elementwise semantics (and all panic loudly on
//! dimensionality mismatches in debug builds).

/// Elementwise sum `a + b` as a new vector.
#[must_use]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Adds `b` into `a` elementwise in place.
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// Writes the elementwise sum `a + b` into `out` (cleared and refilled), so
/// hot paths can reuse one scratch buffer instead of allocating per call.
pub fn add_into(a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(x, y)| x + y));
}

/// Elementwise difference `a - b` as a new vector.
#[must_use]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Subtracts `b` from `a` elementwise in place.
pub fn sub_assign(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter_mut().zip(b) {
        *x -= y;
    }
}

/// Writes the elementwise difference `a - b` into `out` (cleared and
/// refilled).
pub fn sub_into(a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    debug_assert_eq!(a.len(), b.len());
    out.clear();
    out.extend(a.iter().zip(b).map(|(x, y)| x - y));
}

/// Scales every element of `a` by `s` in place.
pub fn scale_assign(a: &mut [f64], s: f64) {
    for x in a.iter_mut() {
        *x *= s;
    }
}

/// Returns `a` scaled by `s` as a new vector.
#[must_use]
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Writes `a * s` into `out` (cleared and refilled).
pub fn scale_into(a: &[f64], s: f64, out: &mut Vec<f64>) {
    out.clear();
    out.extend(a.iter().map(|x| x * s));
}

/// Dot product of `a` and `b`.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between `a` and `b`.
#[must_use]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between `a` and `b`.
#[must_use]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

/// Squared Euclidean norm of `a`.
#[must_use]
pub fn sq_norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum()
}

/// Elementwise square of `a` as a new vector.
#[must_use]
pub fn squared(a: &[f64]) -> Vec<f64> {
    a.iter().map(|x| x * x).collect()
}

/// Mean vector of a set of points.
///
/// Returns a zero vector of dimension `dims` when `points` is empty.
#[must_use]
pub fn mean(points: &[Vec<f64>], dims: usize) -> Vec<f64> {
    if points.is_empty() {
        return vec![0.0; dims];
    }
    let mut acc = vec![0.0; dims];
    for p in points {
        add_assign(&mut acc, p);
    }
    scale_assign(&mut acc, 1.0 / points.len() as f64);
    acc
}

/// Per-dimension (population) variance of a set of points around their mean.
///
/// Returns a zero vector of dimension `dims` when `points` has fewer than two
/// elements.
#[must_use]
pub fn variance(points: &[Vec<f64>], dims: usize) -> Vec<f64> {
    if points.len() < 2 {
        return vec![0.0; dims];
    }
    let m = mean(points, dims);
    let mut acc = vec![0.0; dims];
    for p in points {
        for (d, acc_d) in acc.iter_mut().enumerate() {
            let diff = p[d] - m[d];
            *acc_d += diff * diff;
        }
    }
    scale_assign(&mut acc, 1.0 / points.len() as f64);
    acc
}

/// Index of the dimension with the largest spread (`max - min`) over `points`.
#[must_use]
pub fn widest_dimension(points: &[Vec<f64>], dims: usize) -> usize {
    let mut best_dim = 0;
    let mut best_spread = f64::NEG_INFINITY;
    for d in 0..dims {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for p in points {
            lo = lo.min(p[d]);
            hi = hi.max(p[d]);
        }
        let spread = hi - lo;
        if spread > best_spread {
            best_spread = spread;
            best_dim = d;
        }
    }
    best_dim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -1.0, 4.0];
        let s = add(&a, &b);
        assert_eq!(sub(&s, &b), a);
    }

    #[test]
    fn dot_and_norm() {
        let a = vec![3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(sq_norm(&a), 25.0);
        assert_eq!(dist(&a, &[0.0, 0.0]), 5.0);
    }

    #[test]
    fn mean_of_points() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        assert_eq!(mean(&pts, 2), vec![1.0, 2.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[], 3), vec![0.0; 3]);
    }

    #[test]
    fn variance_of_points() {
        let pts = vec![vec![0.0], vec![2.0]];
        assert_eq!(variance(&pts, 1), vec![1.0]);
    }

    #[test]
    fn widest_dimension_picks_largest_spread() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 10.0]];
        assert_eq!(widest_dimension(&pts, 2), 1);
    }

    #[test]
    fn scale_and_scale_assign_agree() {
        let a = vec![1.0, -2.0, 3.5];
        let mut b = a.clone();
        scale_assign(&mut b, 2.0);
        assert_eq!(scale(&a, 2.0), b);
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -1.0, 4.0];
        let mut scratch = Vec::new();
        add_into(&a, &b, &mut scratch);
        assert_eq!(scratch, add(&a, &b));
        sub_into(&a, &b, &mut scratch);
        assert_eq!(scratch, sub(&a, &b));
        scale_into(&a, 2.5, &mut scratch);
        assert_eq!(scratch, scale(&a, 2.5));
    }

    #[test]
    fn sub_assign_matches_sub() {
        let a = vec![5.0, 7.0];
        let b = vec![1.0, 2.0];
        let mut c = a.clone();
        sub_assign(&mut c, &b);
        assert_eq!(c, sub(&a, &b));
    }

    #[test]
    fn into_variants_reuse_capacity() {
        let a = vec![1.0; 8];
        let mut scratch = Vec::with_capacity(8);
        scale_into(&a, 3.0, &mut scratch);
        let ptr = scratch.as_ptr();
        scale_into(&a, 4.0, &mut scratch);
        assert_eq!(scratch.as_ptr(), ptr, "scratch buffer was reallocated");
    }
}
