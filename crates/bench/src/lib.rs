//! Shared plumbing for the figure/table regeneration binaries and the
//! Criterion benchmarks.
//!
//! Every binary accepts the same small set of command-line flags:
//!
//! * `--scale <f>`   — fraction of the published data-set size to generate
//!   (default 0.05; the originals range from 11 k to 581 k objects, so the
//!   default keeps a laptop run under a minute per figure),
//! * `--max-nodes <n>` — x-axis extent (default 100, as in the paper),
//! * `--folds <n>`   — cross-validation folds (default 4, as in the paper),
//! * `--queries <n>` — cap on test queries per fold (default 400),
//! * `--seed <n>`    — RNG seed (default 42),
//! * `--csv`         — additionally print the raw CSV of every curve.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod record;

use bayestree::{DescentStrategy, RefinementStrategy};
use bt_eval::CurveConfig;
use bt_index::PageGeometry;

/// Command-line options shared by the regeneration binaries.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Fraction of the published data-set size to generate.
    pub scale: f64,
    /// Largest node budget on the x-axis.
    pub max_nodes: usize,
    /// Number of cross-validation folds.
    pub folds: usize,
    /// Cap on test queries per fold.
    pub queries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Simulated disk-page size in bytes; the fanout and leaf capacity of
    /// every tree are derived from it (the paper: "M is given through the
    /// fanout, which in turn is dictated by the page size").
    pub page_bytes: usize,
    /// Whether to print raw CSV in addition to the chart.
    pub csv: bool,
    /// Positional arguments (e.g. the workload name for `figure4`).
    pub positional: Vec<String>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            scale: 0.05,
            max_nodes: 100,
            folds: 4,
            queries: 400,
            seed: 42,
            page_bytes: 2048,
            csv: false,
            positional: Vec::new(),
        }
    }
}

impl RunOptions {
    /// Parses options from an iterator of arguments (excluding the program
    /// name).  Unknown flags abort with a message.
    ///
    /// # Panics
    ///
    /// Panics on malformed flag values.
    #[must_use]
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => options.scale = next_value(&mut iter, "--scale"),
                "--max-nodes" => options.max_nodes = next_value(&mut iter, "--max-nodes"),
                "--folds" => options.folds = next_value(&mut iter, "--folds"),
                "--queries" => options.queries = next_value(&mut iter, "--queries"),
                "--seed" => options.seed = next_value(&mut iter, "--seed"),
                "--page" => options.page_bytes = next_value(&mut iter, "--page"),
                "--csv" => options.csv = true,
                other if other.starts_with("--") => {
                    panic!("unknown flag {other}; supported: --scale --max-nodes --folds --queries --seed --page --csv")
                }
                other => options.positional.push(other.to_string()),
            }
        }
        options
    }

    /// Parses options from the process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The [`CurveConfig`] corresponding to these options, with the tree
    /// geometry left at the library default (a 4 KiB page).
    #[must_use]
    pub fn curve_config(&self) -> CurveConfig {
        CurveConfig {
            max_nodes: self.max_nodes,
            folds: self.folds,
            seed: self.seed,
            descent: DescentStrategy::default(),
            refinement: RefinementStrategy::default(),
            geometry: None,
            max_test_queries: Some(self.queries),
        }
    }

    /// The [`CurveConfig`] for a workload of the given dimensionality, with
    /// the fanout and leaf capacity derived from `--page`.
    #[must_use]
    pub fn curve_config_for(&self, dims: usize) -> CurveConfig {
        CurveConfig {
            geometry: Some(PageGeometry::from_page_size(self.page_bytes, dims)),
            ..self.curve_config()
        }
    }
}

fn next_value<T: std::str::FromStr, I: Iterator<Item = String>>(iter: &mut I, flag: &str) -> T
where
    T::Err: std::fmt::Debug,
{
    iter.next()
        .unwrap_or_else(|| panic!("{flag} requires a value"))
        .parse()
        .unwrap_or_else(|e| panic!("invalid value for {flag}: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_protocol() {
        let o = RunOptions::default();
        assert_eq!(o.max_nodes, 100);
        assert_eq!(o.folds, 4);
    }

    #[test]
    fn flags_are_parsed() {
        let o = RunOptions::parse(
            ["--scale", "0.2", "--max-nodes", "50", "--csv", "gender"]
                .iter()
                .map(ToString::to_string),
        );
        assert!((o.scale - 0.2).abs() < 1e-12);
        assert_eq!(o.max_nodes, 50);
        assert!(o.csv);
        assert_eq!(o.positional, vec!["gender".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = RunOptions::parse(["--bogus".to_string()]);
    }

    #[test]
    fn curve_config_propagates_options() {
        let o = RunOptions::parse(
            ["--queries", "10", "--folds", "3"]
                .iter()
                .map(ToString::to_string),
        );
        let c = o.curve_config();
        assert_eq!(c.folds, 3);
        assert_eq!(c.max_test_queries, Some(10));
    }
}
