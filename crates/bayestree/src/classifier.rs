//! The anytime Bayesian classifier built on per-class Bayes trees.
//!
//! Training builds one Bayes tree per class (Section 2.2) — either by
//! iterative insertion or with one of the bulk loads of Section 3 — and
//! estimates the class priors from the relative class frequencies.
//! Classification maintains one frontier per class; in every time step the
//! refinement strategy (qbk by default) selects a class whose frontier is
//! refined by one node read, and the decision at any interruption point is
//! `argmax_c P(c) * pdq(x, E_c)`.

use crate::bulk::{build_tree, BulkLoadMethod};
use crate::descent::DescentStrategy;
use crate::frontier::TreeFrontier;
use crate::node::KernelSummary;
use crate::qbk::{RefinementScheduler, RefinementStrategy};
use crate::tree::BayesTree;
use bt_anytree::TreeView;
use bt_data::Dataset;
use bt_index::PageGeometry;
use bt_stats::bandwidth::silverman_bandwidth;

/// Configuration of the anytime classifier.
#[derive(Debug, Clone)]
pub struct ClassifierConfig {
    /// Fanout / leaf-capacity parameters; `None` derives them from a 4 KiB
    /// page for the training data's dimensionality.
    pub geometry: Option<PageGeometry>,
    /// How the per-class trees are constructed.
    pub bulk_load: BulkLoadMethod,
    /// Descent strategy used within each tree.
    pub descent: DescentStrategy,
    /// Strategy deciding which class refines next.
    pub refinement: RefinementStrategy,
    /// Whether to fit one kernel bandwidth per class (`true`, the paper's
    /// setting: each tree carries the Silverman bandwidth of its own class)
    /// or one global bandwidth shared by all trees.
    pub per_class_bandwidth: bool,
    /// Seed for the randomised bulk loads.
    pub seed: u64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self {
            geometry: None,
            bulk_load: BulkLoadMethod::EmTopDown,
            descent: DescentStrategy::default(),
            refinement: RefinementStrategy::default(),
            per_class_bandwidth: true,
            seed: 0,
        }
    }
}

impl ClassifierConfig {
    /// Convenience constructor that only overrides the bulk-load method.
    #[must_use]
    pub fn with_bulk_load(bulk_load: BulkLoadMethod) -> Self {
        Self {
            bulk_load,
            ..Self::default()
        }
    }
}

/// The decision for one query at one interruption point.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// Predicted class label.
    pub label: usize,
    /// Normalised posterior probabilities per class (uniform if every class
    /// density underflowed to zero).
    pub posteriors: Vec<f64>,
    /// Number of node reads spent across all class trees.
    pub nodes_read: usize,
}

/// The full anytime trace of one query: the decision after every node read.
#[derive(Debug, Clone)]
pub struct AnytimeTrace {
    /// `labels[t]` is the predicted label after `t` node reads
    /// (`labels[0]` is the root-level decision).
    pub labels: Vec<usize>,
    /// Posteriors at the final interruption point.
    pub final_posteriors: Vec<f64>,
}

impl AnytimeTrace {
    /// The label predicted after `nodes` node reads (saturating at the end of
    /// the trace, i.e. the fully refined model).
    #[must_use]
    pub fn label_after(&self, nodes: usize) -> usize {
        let idx = nodes.min(self.labels.len().saturating_sub(1));
        self.labels[idx]
    }
}

/// An anytime Bayesian classifier: one Bayes tree per class.
#[derive(Debug, Clone)]
pub struct AnytimeClassifier {
    trees: Vec<BayesTree>,
    priors: Vec<f64>,
    class_names: Vec<String>,
    config: ClassifierConfig,
    dims: usize,
}

impl AnytimeClassifier {
    /// Trains the classifier on a labelled data set.
    ///
    /// # Panics
    ///
    /// Panics if the data set is empty or has no classes.
    #[must_use]
    pub fn train(dataset: &Dataset, config: &ClassifierConfig) -> Self {
        Self::train_sharded(dataset, config, 1)
    }

    /// Trains the classifier with up to `num_workers` per-class trees built
    /// **in parallel** on scoped threads.
    ///
    /// The per-class Bayes trees are completely independent (one tree per
    /// class, seeded deterministically per class), so training is
    /// embarrassingly parallel across classes: classes are dealt to at most
    /// `num_workers` worker threads, each of which runs the configured bulk
    /// load for its share.  The result is bit-identical to [`Self::train`]
    /// at any worker count — only the wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if the data set is empty or has no classes.
    #[must_use]
    pub fn train_sharded(dataset: &Dataset, config: &ClassifierConfig, num_workers: usize) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty data set");
        assert!(dataset.num_classes() > 0, "data set has no classes");
        let dims = dataset.dims();
        let geometry = config
            .geometry
            .unwrap_or_else(|| PageGeometry::default_for_dims(dims));

        let global_bandwidth = if config.per_class_bandwidth {
            None
        } else {
            Some(silverman_bandwidth(dataset.features(), dims))
        };

        let num_classes = dataset.num_classes();
        let workers = num_workers.clamp(1, num_classes);
        let chunk = num_classes.div_ceil(workers);
        let mut slots: Vec<Option<BayesTree>> = (0..num_classes).map(|_| None).collect();
        let build_class = |class: usize, slot: &mut Option<BayesTree>| {
            let points = dataset.features_of_class(class);
            let mut tree = build_tree(
                &points,
                dims,
                geometry,
                config.bulk_load,
                config.seed.wrapping_add(class as u64),
            );
            if let Some(bandwidth) = &global_bandwidth {
                if !tree.is_empty() {
                    tree.set_bandwidth(bandwidth.clone());
                }
            }
            *slot = Some(tree);
        };
        if workers <= 1 {
            for (class, slot) in slots.iter_mut().enumerate() {
                build_class(class, slot);
            }
        } else {
            std::thread::scope(|scope| {
                for (chunk_idx, chunk_slots) in slots.chunks_mut(chunk).enumerate() {
                    let build_class = &build_class;
                    scope.spawn(move || {
                        for (offset, slot) in chunk_slots.iter_mut().enumerate() {
                            build_class(chunk_idx * chunk + offset, slot);
                        }
                    });
                }
            });
        }
        let trees: Vec<BayesTree> = slots
            .into_iter()
            .map(|slot| slot.expect("every class tree was built"))
            .collect();

        Self {
            trees,
            priors: dataset.class_priors(),
            class_names: dataset.class_names().to_vec(),
            config: config.clone(),
            dims,
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.trees.len()
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The per-class trees.
    #[must_use]
    pub fn trees(&self) -> &[BayesTree] {
        &self.trees
    }

    /// The class priors `P(c)`.
    #[must_use]
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// Class names, indexed by label.
    #[must_use]
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// The configuration the classifier was trained with.
    #[must_use]
    pub fn config(&self) -> &ClassifierConfig {
        &self.config
    }

    /// Incrementally learns one new labelled observation (online training on
    /// the stream, Section 1).
    ///
    /// # Panics
    ///
    /// Panics if the label is out of range or the point has the wrong
    /// dimensionality.
    pub fn learn_one(&mut self, point: Vec<f64>, label: usize) {
        assert!(label < self.trees.len(), "label out of range");
        self.trees[label].insert(point);
        self.refresh_priors();
    }

    /// Incrementally learns a mini-batch of labelled observations: the batch
    /// is grouped by class and each group is routed through its tree's
    /// batched descent engine ([`BayesTree::insert_batch`]), sharing summary
    /// refreshes and split handling per tree.
    ///
    /// # Panics
    ///
    /// Panics if any label is out of range or any point has the wrong
    /// dimensionality.
    pub fn learn_batch(&mut self, batch: Vec<(Vec<f64>, usize)>) {
        assert!(
            batch.iter().all(|(_, l)| *l < self.trees.len()),
            "label out of range"
        );
        assert!(
            batch.iter().all(|(p, _)| p.len() == self.dims),
            "point dimensionality mismatch"
        );
        let mut per_class: Vec<Vec<Vec<f64>>> = vec![Vec::new(); self.trees.len()];
        for (point, label) in batch {
            per_class[label].push(point);
        }
        for (tree, points) in self.trees.iter_mut().zip(per_class) {
            if !points.is_empty() {
                tree.insert_batch(points);
            }
        }
        self.refresh_priors();
    }

    /// Refreshes the priors from the per-class observation counts.
    fn refresh_priors(&mut self) {
        let total: f64 = self.trees.iter().map(|t| t.len() as f64).sum();
        for (prior, tree) in self.priors.iter_mut().zip(&self.trees) {
            *prior = tree.len() as f64 / total;
        }
    }

    /// Classifies `x` spending at most `budget` node reads.
    #[must_use]
    pub fn classify_with_budget(&self, x: &[f64], budget: usize) -> Classification {
        let (trace, nodes_read) = self.run_anytime(x, budget, false);
        Classification {
            label: *trace.labels.last().expect("trace is never empty"),
            posteriors: trace.final_posteriors,
            nodes_read,
        }
    }

    /// Produces the full anytime trace: the decision after every node read up
    /// to `max_nodes` (or until every frontier is exhausted).
    #[must_use]
    pub fn anytime_trace(&self, x: &[f64], max_nodes: usize) -> AnytimeTrace {
        self.run_anytime(x, max_nodes, true).0
    }

    fn run_anytime(&self, x: &[f64], budget: usize, record_all: bool) -> (AnytimeTrace, usize) {
        assert_eq!(x.len(), self.dims, "query dimensionality mismatch");
        let frontiers: Vec<TreeFrontier<'_>> =
            self.trees.iter().map(|t| TreeFrontier::new(t, x)).collect();
        run_anytime_over(
            frontiers,
            &self.priors,
            self.config.refinement,
            self.config.descent,
            budget,
            record_all,
        )
    }
}

/// The anytime classification loop over any set of per-class frontiers —
/// the live classifier and its epoch-pinned snapshot
/// ([`crate::ClassifierSnapshot`]) run literally this code.  Returns the
/// trace plus the number of refinements (node reads) actually performed.
pub(crate) fn run_anytime_over<V: TreeView<KernelSummary, Vec<f64>>>(
    mut frontiers: Vec<TreeFrontier<'_, V>>,
    priors: &[f64],
    refinement: RefinementStrategy,
    descent: DescentStrategy,
    budget: usize,
    record_all: bool,
) -> (AnytimeTrace, usize) {
    let mut scheduler = RefinementScheduler::new(refinement, frontiers.len());

    let mut labels = Vec::new();
    let mut posteriors = posteriors_over(&frontiers, priors);
    labels.push(argmax(&posteriors));

    let mut nodes_read = 0usize;
    for _ in 0..budget {
        let scores: Vec<f64> = frontiers
            .iter()
            .zip(priors)
            .map(|(f, &p)| p * f.density())
            .collect();
        let refinable: Vec<bool> = frontiers.iter().map(TreeFrontier::can_refine).collect();
        let Some(class) = scheduler.next_class(&scores, &refinable) else {
            break;
        };
        frontiers[class].refine(descent);
        nodes_read += 1;
        posteriors = posteriors_over(&frontiers, priors);
        if record_all {
            labels.push(argmax(&posteriors));
        }
    }
    if !record_all {
        // Only the final decision is needed; overwrite the root-level one.
        labels = vec![argmax(&posteriors)];
    }
    (
        AnytimeTrace {
            labels,
            final_posteriors: posteriors,
        },
        nodes_read,
    )
}

/// Normalised posteriors from the current frontier densities.
fn posteriors_over<V: TreeView<KernelSummary, Vec<f64>>>(
    frontiers: &[TreeFrontier<'_, V>],
    priors: &[f64],
) -> Vec<f64> {
    let joint: Vec<f64> = frontiers
        .iter()
        .zip(priors)
        .map(|(f, &p)| p * f.density())
        .collect();
    let total: f64 = joint.iter().sum();
    if total > 0.0 {
        joint.iter().map(|j| j / total).collect()
    } else {
        // Every class density underflowed: fall back to the priors.
        priors.to_vec()
    }
}

fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_data::synth::blobs::BlobConfig;

    fn easy_dataset() -> Dataset {
        BlobConfig::new(3, 4)
            .samples_per_class(80)
            .seed(11)
            .generate()
    }

    fn accuracy(classifier: &AnytimeClassifier, test: &Dataset, budget: usize) -> f64 {
        let mut correct = 0usize;
        for (x, &y) in test.iter() {
            if classifier.classify_with_budget(x, budget).label == y {
                correct += 1;
            }
        }
        correct as f64 / test.len() as f64
    }

    #[test]
    fn training_builds_one_tree_per_class() {
        let data = easy_dataset();
        let clf = AnytimeClassifier::train(&data, &ClassifierConfig::default());
        assert_eq!(clf.num_classes(), 3);
        assert_eq!(clf.trees().len(), 3);
        let total: usize = clf.trees().iter().map(BayesTree::len).sum();
        assert_eq!(total, data.len());
        let prior_sum: f64 = clf.priors().iter().sum();
        assert!((prior_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn classification_on_separated_blobs_is_accurate() {
        let data = easy_dataset();
        let (train, test) = data.split_holdout(0.3, 1);
        let clf = AnytimeClassifier::train(&train, &ClassifierConfig::default());
        let acc = accuracy(&clf, &test, 25);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn more_budget_never_breaks_the_classifier() {
        let data = easy_dataset();
        let (train, test) = data.split_holdout(0.3, 2);
        let clf = AnytimeClassifier::train(&train, &ClassifierConfig::default());
        let low = accuracy(&clf, &test, 0);
        let high = accuracy(&clf, &test, 60);
        // The anytime property: more budget should not make things much
        // worse; on this easy problem it should help or stay equal.
        assert!(high + 0.05 >= low, "low {low}, high {high}");
    }

    #[test]
    fn anytime_trace_has_one_label_per_step() {
        let data = easy_dataset();
        // A small page geometry forces deep trees so the budget is actually
        // spendable.
        let config = ClassifierConfig {
            geometry: Some(PageGeometry::from_fanout(4, 4)),
            ..ClassifierConfig::default()
        };
        let clf = AnytimeClassifier::train(&data, &config);
        let trace = clf.anytime_trace(data.feature(0), 15);
        assert_eq!(trace.labels.len(), 16);
        assert_eq!(trace.label_after(0), trace.labels[0]);
        assert_eq!(trace.label_after(100), *trace.labels.last().unwrap());
    }

    #[test]
    fn trace_stops_early_when_trees_are_exhausted() {
        // With the default 4 KiB page geometry each class fits into a single
        // leaf, so only one refinement per class is possible.
        let data = easy_dataset();
        let clf = AnytimeClassifier::train(&data, &ClassifierConfig::default());
        let trace = clf.anytime_trace(data.feature(0), 50);
        assert!(trace.labels.len() <= 1 + 3);
    }

    #[test]
    fn posteriors_are_normalised() {
        let data = easy_dataset();
        let clf = AnytimeClassifier::train(&data, &ClassifierConfig::default());
        let c = clf.classify_with_budget(data.feature(3), 10);
        let sum: f64 = c.posteriors.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(c.posteriors.len(), 3);
    }

    #[test]
    fn far_away_query_falls_back_to_priors() {
        let data = easy_dataset();
        let clf = AnytimeClassifier::train(&data, &ClassifierConfig::default());
        let far = vec![1e6; 4];
        let c = clf.classify_with_budget(&far, 5);
        let sum: f64 = c.posteriors.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn online_learning_updates_priors_and_trees() {
        let data = easy_dataset();
        let mut clf = AnytimeClassifier::train(&data, &ClassifierConfig::default());
        let before = clf.trees()[1].len();
        clf.learn_one(data.feature(0).to_vec(), 1);
        assert_eq!(clf.trees()[1].len(), before + 1);
        let sum: f64 = clf.priors().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_bulk_loads_classify_reasonably() {
        let data = easy_dataset();
        let (train, test) = data.split_holdout(0.3, 3);
        for method in BulkLoadMethod::all() {
            let config = ClassifierConfig::with_bulk_load(method);
            let clf = AnytimeClassifier::train(&train, &config);
            let acc = accuracy(&clf, &test, 20);
            assert!(acc > 0.8, "{method:?}: accuracy {acc}");
        }
    }

    #[test]
    #[should_panic(expected = "empty data set")]
    fn training_on_empty_data_panics() {
        let empty = Dataset::new("e", 2, vec!["a".to_string()]);
        let _ = AnytimeClassifier::train(&empty, &ClassifierConfig::default());
    }
}
