//! Property tests: the block kernels match their scalar references.
//!
//! **Tolerances.**
//!
//! * `f64` columns: every per-entry result must match the scalar reference
//!   **bit for bit** (0 ULP — asserted with `to_bits()` equality modulo the
//!   `-0.0` case).  The block kernels deliberately replicate the scalar
//!   operation order (terms added dimension-ascending, per-element division
//!   by the floored bandwidth, constants hoisted but recomputed identically),
//!   so this is an equality test, stronger than the issue's 1-ULP budget.
//! * `f32` columns quantise only the *stored operands* (means, variances,
//!   box bounds) to `f32`; all arithmetic and accumulation stay `f64`.  A
//!   quantised operand `x` differs from its `f64` value by at most
//!   `|x| * 2^-24`, so squared-distance-style results drift by a relative
//!   `~2^-23` per term; log-kernels add an absolute error of order
//!   `|diff| * 2^-23 / h^2` through the `u^2` term.  The generators below
//!   keep coordinates in `[-50, 50]` and bandwidths above `1e-3`, for which
//!   an absolute tolerance of `1e-2` on log values and a relative `1e-4` on
//!   distances is conservative; the tests assert those bounds.
//!
//! Edge cases covered explicitly: bandwidths at / below the variance-floor
//! square root, zero variances, empty blocks, and degenerate (point) boxes.

use proptest::prelude::*;

use bt_stats::kernel::{
    box_min_sq_dists_block, diag_log_pdfs_block, farthest_point_log_kernel,
    farthest_point_log_kernels_block, gaussian_log_term, gaussian_log_terms_block,
    nearest_point_log_kernel, nearest_point_log_kernels_block, smoothed_farthest_log_kernel,
    smoothed_farthest_log_kernels_block, sq_dists_block,
};
use bt_stats::{
    BlockPrecision, DiagGaussian, GaussianKernel, Kernel, SummaryBlock, VARIANCE_FLOOR,
};

/// One generated node: `len` entries over `dims` dimensions.
#[derive(Debug, Clone)]
struct Node {
    dims: usize,
    query: Vec<f64>,
    bandwidth: Vec<f64>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
    lower: Vec<Vec<f64>>,
    upper: Vec<Vec<f64>>,
}

fn node_strategy() -> impl Strategy<Value = Node> {
    (1usize..5, 0usize..20).prop_flat_map(|(dims, len)| {
        let coord = -50.0f64..50.0;
        // Bandwidths from genuinely degenerate (below the floor sqrt,
        // ~3.2e-5) through ordinary scales.
        let band = prop_oneof![0.0f64..2e-5, 1e-3f64..4.0];
        // Variances including exact zero and sub-floor values.
        let var = prop_oneof![Just(0.0f64), 0.0f64..1e-10, 1e-6f64..9.0];
        (
            prop::collection::vec(coord.clone(), dims),
            prop::collection::vec(band, dims),
            prop::collection::vec(prop::collection::vec(coord.clone(), dims), len),
            prop::collection::vec(prop::collection::vec(var, dims), len),
            prop::collection::vec(
                prop::collection::vec((coord.clone(), 0.0f64..10.0), dims),
                len,
            ),
        )
            .prop_map(move |(query, bandwidth, means, vars, boxes)| {
                let mut lower = Vec::with_capacity(boxes.len());
                let mut upper = Vec::with_capacity(boxes.len());
                for entry in &boxes {
                    lower.push(entry.iter().map(|(lo, _)| *lo).collect::<Vec<_>>());
                    upper.push(entry.iter().map(|(lo, w)| lo + w).collect::<Vec<_>>());
                }
                Node {
                    dims,
                    query,
                    bandwidth,
                    means,
                    vars,
                    lower,
                    upper,
                }
            })
    })
}

/// Gathers the node into a block at the given precision.
fn gather(node: &Node, precision: BlockPrecision) -> SummaryBlock {
    let mut block = SummaryBlock::with_precision(precision);
    block.reset(node.dims, node.means.len());
    block.enable_boxes();
    for (i, mean) in node.means.iter().enumerate() {
        block.set_weight(i, i as f64 + 1.0);
        for (d, &m) in mean.iter().enumerate() {
            block.set_mean(d, i, m);
            block.set_var(d, i, node.vars[i][d]);
            block.set_lower(d, i, node.lower[i][d]);
            block.set_upper(d, i, node.upper[i][d]);
        }
    }
    block
}

fn assert_bit_equal(got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits() || (*g == 0.0 && *w == 0.0),
            "entry {i}: block {g:?} ({:#x}) != scalar {w:?} ({:#x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

fn assert_close(got: &[f64], want: &[f64], abs_tol: f64, rel_tol: f64) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let err = (g - w).abs();
        let bound = abs_tol + rel_tol * w.abs();
        assert!(err <= bound, "entry {i}: |{g} - {w}| = {err} > {bound}");
    }
}

/// The scalar ClusTree smoothed kernel term the `vars` mode must reproduce.
fn scalar_smoothed(query: &[f64], mean: &[f64], var: &[f64], bandwidth: &[f64]) -> f64 {
    let mut acc = 0.0;
    for d in 0..query.len() {
        let diff = query[d] - mean[d];
        let t = diff * diff + var[d];
        acc += gaussian_log_term(t.sqrt(), bandwidth[d]);
    }
    acc
}

/// The scalar squared distance (same dimension-ascending accumulation as
/// `ClusterFeature::sq_dist_mean_to` evaluates against a gathered mean).
fn scalar_sq_dist(query: &[f64], mean: &[f64]) -> f64 {
    let mut acc = 0.0;
    for d in 0..query.len() {
        let diff = mean[d] - query[d];
        acc += diff * diff;
    }
    acc
}

/// The scalar box minimum squared distance (`Mbr::min_dist_sq`).
fn scalar_box_min_sq(query: &[f64], lower: &[f64], upper: &[f64]) -> f64 {
    let mut acc = 0.0;
    for d in 0..query.len() {
        let diff = if query[d] < lower[d] {
            lower[d] - query[d]
        } else if query[d] > upper[d] {
            query[d] - upper[d]
        } else {
            0.0
        };
        acc += diff * diff;
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sq_dists_match_scalar_bitwise(node in node_strategy()) {
        let block = gather(&node, BlockPrecision::F64);
        let mut out = Vec::new();
        sq_dists_block(&node.query, block.mean(), block.len(), &mut out);
        let want: Vec<f64> = node.means.iter().map(|m| scalar_sq_dist(&node.query, m)).collect();
        assert_bit_equal(&out, &want);
    }

    #[test]
    fn gaussian_log_terms_match_scalar_bitwise(node in node_strategy()) {
        let block = gather(&node, BlockPrecision::F64);
        let mut out = Vec::new();
        // Without variances: the product log-kernel at each mean.
        gaussian_log_terms_block(&node.query, &node.bandwidth, block.mean(), None, block.len(), &mut out);
        let k = GaussianKernel;
        let want: Vec<f64> = node
            .means
            .iter()
            .map(|m| k.log_density(m, &node.query, &node.bandwidth))
            .collect();
        assert_bit_equal(&out, &want);
        // With variances: the smoothed (Jensen) kernel.
        gaussian_log_terms_block(
            &node.query,
            &node.bandwidth,
            block.mean(),
            Some(block.var()),
            block.len(),
            &mut out,
        );
        let want: Vec<f64> = node
            .means
            .iter()
            .zip(&node.vars)
            .map(|(m, v)| scalar_smoothed(&node.query, m, v, &node.bandwidth))
            .collect();
        assert_bit_equal(&out, &want);
    }

    #[test]
    fn diag_log_pdfs_match_scalar_bitwise(node in node_strategy()) {
        // The gather must replicate DiagGaussian::new's clamp.
        let block = {
            let mut block = gather(&node, BlockPrecision::F64);
            for (i, vars) in node.vars.iter().enumerate() {
                for (d, &v) in vars.iter().enumerate() {
                    let clamped = if v.is_finite() { v.max(VARIANCE_FLOOR) } else { VARIANCE_FLOOR };
                    block.set_var(d, i, clamped);
                }
            }
            block
        };
        let mut out = Vec::new();
        diag_log_pdfs_block(&node.query, block.mean(), block.var(), None, block.len(), &mut out);
        let want: Vec<f64> = node
            .means
            .iter()
            .zip(&node.vars)
            .map(|(m, v)| DiagGaussian::new(m.clone(), v.clone()).log_pdf(&node.query))
            .collect();
        assert_bit_equal(&out, &want);
        // With the precomputed log-variance column (the cached-gather fast
        // path, SIMD-dispatched) the results must not move a bit.
        let block = {
            let mut block = block;
            block.fill_log_vars();
            block
        };
        diag_log_pdfs_block(
            &node.query,
            block.mean(),
            block.var(),
            block.log_vars(),
            block.len(),
            &mut out,
        );
        assert_bit_equal(&out, &want);
    }

    #[test]
    fn box_kernels_match_scalar_bitwise(node in node_strategy()) {
        let block = gather(&node, BlockPrecision::F64);
        let mut out = Vec::new();
        let n = block.len();

        nearest_point_log_kernels_block(
            &node.query, &node.bandwidth, block.lower(), block.upper(), n, &mut out,
        );
        let want: Vec<f64> = (0..n)
            .map(|i| nearest_point_log_kernel(&node.query, &node.lower[i], &node.upper[i], &node.bandwidth))
            .collect();
        assert_bit_equal(&out, &want);

        farthest_point_log_kernels_block(
            &node.query, &node.bandwidth, block.lower(), block.upper(), n, &mut out,
        );
        let want: Vec<f64> = (0..n)
            .map(|i| farthest_point_log_kernel(&node.query, &node.lower[i], &node.upper[i], &node.bandwidth))
            .collect();
        assert_bit_equal(&out, &want);

        smoothed_farthest_log_kernels_block(
            &node.query, &node.bandwidth, block.lower(), block.upper(), n, &mut out,
        );
        let want: Vec<f64> = (0..n)
            .map(|i| smoothed_farthest_log_kernel(&node.query, &node.lower[i], &node.upper[i], &node.bandwidth))
            .collect();
        assert_bit_equal(&out, &want);

        box_min_sq_dists_block(&node.query, block.lower(), block.upper(), n, &mut out);
        let want: Vec<f64> = (0..n)
            .map(|i| scalar_box_min_sq(&node.query, &node.lower[i], &node.upper[i]))
            .collect();
        assert_bit_equal(&out, &want);
    }

    #[test]
    fn f32_mode_is_within_documented_tolerance(node in node_strategy()) {
        let block = gather(&node, BlockPrecision::F32);
        let mut out = Vec::new();
        let n = block.len();

        sq_dists_block(&node.query, block.mean(), n, &mut out);
        let want: Vec<f64> = node.means.iter().map(|m| scalar_sq_dist(&node.query, m)).collect();
        // Quantising a coordinate in [-50, 50] moves it by <= 50 * 2^-24
        // ~ 3e-6; a squared distance of magnitude D picks up ~2 sqrt(D)
        // per-dim errors of that size.
        assert_close(&out, &want, 1e-2, 1e-4);

        gaussian_log_terms_block(
            &node.query, &node.bandwidth, block.mean(), Some(block.var()), n, &mut out,
        );
        let want: Vec<f64> = node
            .means
            .iter()
            .zip(&node.vars)
            .map(|(m, v)| scalar_smoothed(&node.query, m, v, &node.bandwidth))
            .collect();
        // Log-kernel error scales with |u| * delta_u; with the floored
        // bandwidth >= 3.16e-5 and |diff| <= 100 the u^2 term stays finite
        // and the relative bound below holds with wide margin.
        assert_close(&out, &want, 1e-2, 1e-3);

        nearest_point_log_kernels_block(
            &node.query, &node.bandwidth, block.lower(), block.upper(), n, &mut out,
        );
        let want: Vec<f64> = (0..n)
            .map(|i| nearest_point_log_kernel(&node.query, &node.lower[i], &node.upper[i], &node.bandwidth))
            .collect();
        assert_close(&out, &want, 1e-2, 1e-3);
    }

    #[test]
    fn empty_blocks_yield_empty_outputs(dims in 1usize..5) {
        let mut block = SummaryBlock::new();
        block.reset(dims, 0);
        block.enable_boxes();
        let query = vec![0.5; dims];
        let bandwidth = vec![1.0; dims];
        let mut out = vec![123.0];
        sq_dists_block(&query, block.mean(), 0, &mut out);
        prop_assert!(out.is_empty());
        gaussian_log_terms_block(&query, &bandwidth, block.mean(), None, 0, &mut out);
        prop_assert!(out.is_empty());
        nearest_point_log_kernels_block(&query, &bandwidth, block.lower(), block.upper(), 0, &mut out);
        prop_assert!(out.is_empty());
    }
}

#[test]
fn smoothed_farthest_is_a_lower_bound_on_member_clusters() {
    // Any cluster whose mean and mass sit inside the box has a smoothed
    // kernel value >= the smoothed farthest-point bound.
    let query = [0.0, 3.0];
    let bandwidth = [0.7, 1.3];
    let lower = [1.0, -2.0];
    let upper = [4.0, 1.5];
    let floor = smoothed_farthest_log_kernel(&query, &lower, &upper, &bandwidth);
    for steps in 0..50 {
        let fx = steps as f64 / 49.0;
        let mean = [
            lower[0] + fx * (upper[0] - lower[0]),
            lower[1] + (1.0 - fx) * (upper[1] - lower[1]),
        ];
        // Maximum admissible variance for a member cluster.
        let var = [
            (0.5 * (upper[0] - lower[0])).powi(2) * fx,
            (0.5 * (upper[1] - lower[1])).powi(2) * (1.0 - fx),
        ];
        let mut acc = 0.0;
        for d in 0..2 {
            let diff = query[d] - mean[d];
            let t = diff * diff + var[d];
            acc += gaussian_log_term(t.sqrt(), bandwidth[d]);
        }
        assert!(
            acc >= floor - 1e-12,
            "member cluster {mean:?}/{var:?} below floor: {acc} < {floor}"
        );
    }
}

#[test]
fn smoothed_farthest_never_exceeds_plain_farthest() {
    // The smoothing term only adds distance, so the smoothed bound is
    // tighter-or-equal from below than... actually *smaller* or equal:
    // sqrt(far^2 + half^2) >= far, and the kernel decreases with distance.
    let query = [2.0];
    let bandwidth = [0.9];
    let lower = [4.0];
    let upper = [9.0];
    let smoothed = smoothed_farthest_log_kernel(&query, &lower, &upper, &bandwidth);
    let plain = farthest_point_log_kernel(&query, &lower, &upper, &bandwidth);
    assert!(smoothed <= plain + 1e-12);
}
