//! Generic Gaussian-blob data sets for examples and tests.

use crate::dataset::Dataset;
use crate::synth::ClassMixtureConfig;

/// Builder for a small, well-separated multi-class Gaussian data set.
///
/// This is the generator used by the quickstart example and by most unit
/// tests: it produces classes that are easy enough to classify that accuracy
/// assertions stay stable, while still being multi-modal so the tree has a
/// non-trivial structure to index.
#[derive(Debug, Clone)]
pub struct BlobConfig {
    inner: ClassMixtureConfig,
    samples_per_class: usize,
}

impl BlobConfig {
    /// Creates a configuration for `classes` classes in `dims` dimensions.
    #[must_use]
    pub fn new(classes: usize, dims: usize) -> Self {
        let mut inner = ClassMixtureConfig::new("blobs", classes, dims);
        inner.separation = 12.0;
        inner.spread = 0.8;
        inner.clusters_per_class = 2;
        Self {
            inner,
            samples_per_class: 100,
        }
    }

    /// Sets the number of samples drawn per class.
    #[must_use]
    pub fn samples_per_class(mut self, n: usize) -> Self {
        self.samples_per_class = n;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Sets the number of Gaussian clusters per class.
    #[must_use]
    pub fn clusters_per_class(mut self, clusters: usize) -> Self {
        self.inner.clusters_per_class = clusters.max(1);
        self
    }

    /// Sets the within-cluster standard deviation (larger = harder problem).
    #[must_use]
    pub fn spread(mut self, spread: f64) -> Self {
        self.inner.spread = spread;
        self
    }

    /// Sets the side length of the region cluster centres are drawn from.
    #[must_use]
    pub fn separation(mut self, separation: f64) -> Self {
        self.inner.separation = separation;
        self
    }

    /// Generates the data set.
    #[must_use]
    pub fn generate(&self) -> Dataset {
        self.inner
            .generate(self.samples_per_class * self.inner.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_requested_shape() {
        let ds = BlobConfig::new(4, 3)
            .samples_per_class(50)
            .seed(1)
            .generate();
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.dims(), 3);
        assert_eq!(ds.num_classes(), 4);
        assert_eq!(ds.class_counts(), vec![50; 4]);
    }

    #[test]
    fn different_seeds_give_different_data() {
        let a = BlobConfig::new(2, 2).seed(1).generate();
        let b = BlobConfig::new(2, 2).seed(2).generate();
        assert_ne!(a.features()[0], b.features()[0]);
    }

    #[test]
    fn spread_controls_difficulty() {
        let tight = BlobConfig::new(2, 2).spread(0.1).seed(3).generate();
        let loose = BlobConfig::new(2, 2).spread(5.0).seed(3).generate();
        // Within-class variance should differ by orders of magnitude.
        let var = |ds: &Dataset| {
            let pts = ds.features_of_class(0);
            bt_stats::vector::variance(&pts, 2).iter().sum::<f64>()
        };
        assert!(var(&loose) > var(&tight) * 5.0);
    }
}
