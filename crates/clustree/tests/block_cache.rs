//! Cache-epoch interaction properties for the per-node block cache, on the
//! micro-cluster tree.
//!
//! Mirrors the Bayes-tree suite: warm slots, cold slots and cache-less
//! views produce bit-identical density answers, stale blocks are never
//! consumed after a mutation restamps the node, and epoch-pinned snapshots
//! stay frozen while the live cache churns.

use bt_anytree::{Node, NodeId, QueryAnswer, RefineOrder, Summary, TreeView};
use clustree::{ClusTree, ClusTreeConfig, ShardedClusTree};

/// Delegating view whose `block_cache` stays at the default `None` — the
/// gather-every-time reference every cached answer must reproduce.
struct NoCache<'a, V>(&'a V);

impl<S: Summary, L, V: TreeView<S, L>> TreeView<S, L> for NoCache<'_, V> {
    fn dims(&self) -> usize {
        self.0.dims()
    }

    fn root(&self) -> NodeId {
        self.0.root()
    }

    fn node(&self, id: NodeId) -> &Node<S, L> {
        self.0.node(id)
    }

    fn height(&self) -> usize {
        self.0.height()
    }
}

const DIMS: usize = 3;
const BUDGET: usize = 16;
const NODE_BUDGET: usize = 8;

fn stream(n: usize, phase: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let i = i + phase;
            let c = (i % 4) as f64 * 3.0;
            (0..DIMS)
                .map(|d| c + ((i * 31 + d * 17) % 97) as f64 / 97.0)
                .collect()
        })
        .collect()
}

fn build_tree(points: &[Vec<f64>]) -> ClusTree {
    let mut tree = ClusTree::new(DIMS, ClusTreeConfig::default());
    for (batch, chunk) in points.chunks(64).enumerate() {
        tree.insert_batch(chunk, batch as f64, NODE_BUDGET);
    }
    tree
}

fn queries() -> Vec<Vec<f64>> {
    stream(40, 7)
}

fn bandwidth() -> Vec<f64> {
    vec![0.8; DIMS]
}

fn bits(answers: &[QueryAnswer]) -> Vec<(u64, u64, u64)> {
    answers
        .iter()
        .map(|a| (a.estimate.to_bits(), a.lower.to_bits(), a.upper.to_bits()))
        .collect()
}

#[test]
fn warm_cache_answers_match_the_gather_every_time_reference() {
    let tree = build_tree(&stream(300, 0));
    let queries = queries();
    let bw = bandwidth();

    let (cold, cold_stats) = tree.density_batch(&queries, &bw, RefineOrder::BestFirst, BUDGET);
    assert!(cold_stats.block_gathers > 0, "block path is exercised");
    let (warm, warm_stats) = tree.density_batch(&queries, &bw, RefineOrder::BestFirst, BUDGET);
    assert!(
        warm_stats.gathers_avoided > 0,
        "second pass hits the warm slots"
    );
    assert_eq!(bits(&cold), bits(&warm), "hits change nothing");

    let (reference, ref_stats) = NoCache(tree.core()).query_batch(
        &tree.query_model(&bw),
        &queries,
        RefineOrder::BestFirst,
        BUDGET,
    );
    assert_eq!(ref_stats.gathers_avoided, 0, "no slots, no hits");
    assert_eq!(bits(&reference), bits(&warm), "cache is invisible");
}

#[test]
fn mutation_restamps_the_slot_so_stale_blocks_are_never_reused() {
    let mut tree = build_tree(&stream(300, 0));
    let queries = queries();
    let bw = bandwidth();

    let _ = tree.density_batch(&queries, &bw, RefineOrder::BestFirst, BUDGET);
    tree.insert_batch(&stream(200, 1000), 50.0, NODE_BUDGET);

    let (after, _) = tree.density_batch(&queries, &bw, RefineOrder::BestFirst, BUDGET);
    let (reference, _) = NoCache(tree.core()).query_batch(
        &tree.query_model(&bw),
        &queries,
        RefineOrder::BestFirst,
        BUDGET,
    );
    assert_eq!(
        bits(&reference),
        bits(&after),
        "post-mutation answers must come from fresh gathers, not stale blocks"
    );
}

#[test]
fn pinned_snapshot_scores_identically_while_the_live_cache_churns() {
    let mut tree = build_tree(&stream(300, 0));
    let queries = queries();
    let bw = bandwidth();
    let snapshot = tree.snapshot();

    let (frozen, _) = snapshot.density_batch(&queries, &bw, RefineOrder::BestFirst, BUDGET);

    for phase in 0..3 {
        tree.insert_batch(
            &stream(100, 2000 + phase * 100),
            60.0 + phase as f64,
            NODE_BUDGET,
        );
        let _ = tree.density_batch(&queries, &bw, RefineOrder::BestFirst, BUDGET);
    }

    let (again, again_stats) =
        snapshot.density_batch(&queries, &bw, RefineOrder::BestFirst, BUDGET);
    assert!(
        again_stats.gathers_avoided > 0,
        "snapshot reuses its warm blocks"
    );
    assert_eq!(bits(&frozen), bits(&again), "snapshot answers are frozen");

    let (reference, _) = NoCache(snapshot.core()).query_batch(
        &snapshot.query_model(&bw),
        &queries,
        RefineOrder::BestFirst,
        BUDGET,
    );
    assert_eq!(bits(&reference), bits(&frozen), "and still exact");
}

#[test]
fn sharded_warm_cache_is_bit_identical_to_the_cold_pass() {
    let points = stream(400, 0);
    let mut tree: ShardedClusTree = ShardedClusTree::new(DIMS, ClusTreeConfig::default(), 3);
    for (batch, chunk) in points.chunks(64).enumerate() {
        let _ = tree.insert_batch(chunk, batch as f64, NODE_BUDGET);
    }
    let queries = queries();
    let bw = bandwidth();

    let (cold, _) = tree.density_batch(&queries, &bw, RefineOrder::BestFirst, BUDGET);
    let (warm, warm_stats) = tree.density_batch(&queries, &bw, RefineOrder::BestFirst, BUDGET);
    assert!(
        warm_stats.gathers_avoided > 0,
        "shard frontiers hit their warm slots"
    );
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
    }
}
