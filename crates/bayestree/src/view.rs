//! Epoch-pinned snapshots of the Bayes tree, its sharded variant and the
//! anytime classifier.
//!
//! A snapshot is a cheap, owned, `Send + Sync` point-in-time view over the
//! shared core's versioned arena ([`bt_anytree::snapshot`]): queries
//! answered against it are bit-identical to querying the live structure at
//! snapshot time, even while later training batches mutate the tree
//! concurrently (writers copy-on-write any node a snapshot still pins).
//! This is what lets a stream processor keep serving density / outlier /
//! classification queries *while* inserts are flowing.

use crate::classifier::{run_anytime_over, AnytimeClassifier, AnytimeTrace, Classification};
use crate::descent::DescentStrategy;
use crate::frontier::TreeFrontier;
use crate::node::{KernelSummary, StoredElement};
use crate::qbk::RefinementStrategy;
use crate::query::KernelQueryModel;
use crate::tree::BayesTree;
use bt_anytree::{
    OutlierScore, QueryAnswer, QueryStats, ShardedQueryAnswer, ShardedTreeSnapshot, TreeSnapshot,
    TreeView,
};

/// An epoch-pinned, immutable view of a [`BayesTree`]: the core snapshot
/// plus the density-model parameters (observation count, bandwidth) frozen
/// at snapshot time.
#[derive(Debug, Clone)]
pub struct BayesTreeSnapshot<E: StoredElement = f64> {
    core: TreeSnapshot<E::Summary, Vec<f64>>,
    num_points: usize,
    bandwidth: Vec<f64>,
}

impl<E: StoredElement> BayesTreeSnapshot<E> {
    pub(crate) fn from_parts(
        core: TreeSnapshot<E::Summary, Vec<f64>>,
        num_points: usize,
        bandwidth: Vec<f64>,
    ) -> Self {
        Self {
            core,
            num_points,
            bandwidth,
        }
    }

    /// Dimensionality of the stored kernels.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.core.dims()
    }

    /// Number of observations stored at snapshot time.
    #[must_use]
    pub fn len(&self) -> usize {
        self.num_points
    }

    /// Whether the snapshot holds no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_points == 0
    }

    /// Height of the tree at snapshot time.
    #[must_use]
    pub fn height(&self) -> usize {
        self.core.height()
    }

    /// The published epoch this snapshot pins.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// The kernel bandwidth frozen at snapshot time.
    #[must_use]
    pub fn bandwidth(&self) -> &[f64] {
        &self.bandwidth
    }

    /// The underlying core snapshot (for frontier construction and
    /// inspection through [`TreeView`]).
    #[must_use]
    pub fn core(&self) -> &TreeSnapshot<E::Summary, Vec<f64>> {
        &self.core
    }

    /// The kernel-density query model frozen at snapshot time (block
    /// precision follows the stored precision, exactly as on the live
    /// tree).
    #[must_use]
    pub fn query_model(&self) -> KernelQueryModel<'_> {
        KernelQueryModel::new(self.num_points, &self.bandwidth).with_precision(E::GATHER_PRECISION)
    }

    /// Budget-bracketed anytime density query against the frozen tree —
    /// exactly what [`BayesTree::anytime_density`] returned at snapshot
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn anytime_density(
        &self,
        x: &[f64],
        strategy: DescentStrategy,
        budget: usize,
    ) -> QueryAnswer {
        self.core
            .query_with_budget(&self.query_model(), x, strategy.into(), budget)
    }

    /// Batched density queries through one reused cursor (see
    /// [`BayesTree::density_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if any query has the wrong dimensionality.
    #[must_use]
    pub fn density_batch(
        &self,
        queries: &[Vec<f64>],
        strategy: DescentStrategy,
        budget: usize,
    ) -> (Vec<QueryAnswer>, QueryStats) {
        self.core
            .query_batch(&self.query_model(), queries, strategy.into(), budget)
    }

    /// Anytime outlier scoring against the frozen tree (see
    /// [`BayesTree::outlier_score`]).
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn outlier_score(&self, x: &[f64], threshold: f64, budget: usize) -> OutlierScore {
        self.core
            .outlier_score(&self.query_model(), x, threshold, budget)
    }
}

impl<E: StoredElement> BayesTree<E> {
    /// Takes an epoch-pinned snapshot: the versioned arena spine is cloned
    /// (`O(nodes)` pointer copies), the published epoch is pinned, and the
    /// density-model parameters (count, bandwidth) are frozen alongside.
    ///
    /// The snapshot is `Send + Sync` and keeps answering queries
    /// bit-identically to this moment while later inserts mutate the tree.
    #[must_use]
    pub fn snapshot(&self) -> BayesTreeSnapshot<E> {
        BayesTreeSnapshot::from_parts(
            self.core().snapshot(),
            self.len(),
            self.bandwidth().to_vec(),
        )
    }
}

/// An epoch-pinned, immutable view of a
/// [`ShardedBayesTree`](crate::ShardedBayesTree): one pinned core snapshot
/// per shard plus the frozen global density-model parameters.
#[derive(Debug, Clone)]
pub struct ShardedBayesTreeSnapshot<E: StoredElement = f64> {
    core: ShardedTreeSnapshot<E::Summary, Vec<f64>>,
    num_points: usize,
    bandwidth: Vec<f64>,
}

impl<E: StoredElement> ShardedBayesTreeSnapshot<E> {
    pub(crate) fn from_parts(
        core: ShardedTreeSnapshot<E::Summary, Vec<f64>>,
        num_points: usize,
        bandwidth: Vec<f64>,
    ) -> Self {
        Self {
            core,
            num_points,
            bandwidth,
        }
    }

    /// Number of shards captured.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.core.num_shards()
    }

    /// Number of observations stored at snapshot time (across all shards).
    #[must_use]
    pub fn len(&self) -> usize {
        self.num_points
    }

    /// Whether the snapshot holds no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_points == 0
    }

    /// The per-shard epochs this snapshot pins.
    #[must_use]
    pub fn epochs(&self) -> Vec<u64> {
        self.core.epochs()
    }

    /// The underlying per-shard core snapshots.
    #[must_use]
    pub fn core(&self) -> &ShardedTreeSnapshot<E::Summary, Vec<f64>> {
        &self.core
    }

    /// Folded anytime density query against the frozen shards — exactly
    /// what the live sharded tree answered at snapshot time.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn anytime_density(
        &self,
        x: &[f64],
        strategy: DescentStrategy,
        budget: usize,
    ) -> ShardedQueryAnswer {
        let n = self.num_points;
        let bandwidth = &self.bandwidth;
        self.core.query_with_budget(
            &|| KernelQueryModel::new(n, bandwidth).with_precision(E::GATHER_PRECISION),
            x,
            strategy.into(),
            budget,
        )
    }

    /// Batched folded density queries against the frozen shards.
    ///
    /// # Panics
    ///
    /// Panics if any query has the wrong dimensionality.
    #[must_use]
    pub fn density_batch(
        &self,
        queries: &[Vec<f64>],
        strategy: DescentStrategy,
        budget: usize,
    ) -> (Vec<ShardedQueryAnswer>, QueryStats) {
        let n = self.num_points;
        let bandwidth = &self.bandwidth;
        self.core.query_batch(
            &|| KernelQueryModel::new(n, bandwidth).with_precision(E::GATHER_PRECISION),
            queries,
            strategy.into(),
            budget,
        )
    }

    /// Anytime outlier scoring against the frozen shards.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn outlier_score(&self, x: &[f64], threshold: f64, budget: usize) -> OutlierScore {
        let n = self.num_points;
        let bandwidth = &self.bandwidth;
        self.core.outlier_score(
            &|| KernelQueryModel::new(n, bandwidth).with_precision(E::GATHER_PRECISION),
            x,
            threshold,
            budget,
        )
    }
}

/// An epoch-pinned, immutable view of an [`AnytimeClassifier`]: one
/// per-class [`BayesTreeSnapshot`] plus the priors frozen at snapshot time.
///
/// `Send + Sync`, so classification keeps running on reader threads while
/// [`AnytimeClassifier::learn_batch`] drains new labelled observations into
/// the live per-class trees.
#[derive(Debug, Clone)]
pub struct ClassifierSnapshot {
    trees: Vec<BayesTreeSnapshot>,
    priors: Vec<f64>,
    refinement: RefinementStrategy,
    descent: DescentStrategy,
    dims: usize,
}

impl ClassifierSnapshot {
    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.trees.len()
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The class priors frozen at snapshot time.
    #[must_use]
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// The per-class tree snapshots.
    #[must_use]
    pub fn trees(&self) -> &[BayesTreeSnapshot] {
        &self.trees
    }

    /// Classifies `x` spending at most `budget` node reads against the
    /// frozen per-class trees — exactly what
    /// [`AnytimeClassifier::classify_with_budget`] returned at snapshot
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn classify_with_budget(&self, x: &[f64], budget: usize) -> Classification {
        let (trace, nodes_read) = self.run_anytime(x, budget, false);
        Classification {
            label: *trace.labels.last().expect("trace is never empty"),
            posteriors: trace.final_posteriors,
            nodes_read,
        }
    }

    /// The full anytime trace against the frozen per-class trees (see
    /// [`AnytimeClassifier::anytime_trace`]).
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn anytime_trace(&self, x: &[f64], max_nodes: usize) -> AnytimeTrace {
        self.run_anytime(x, max_nodes, true).0
    }

    fn run_anytime(&self, x: &[f64], budget: usize, record_all: bool) -> (AnytimeTrace, usize) {
        assert_eq!(x.len(), self.dims, "query dimensionality mismatch");
        let frontiers: Vec<TreeFrontier<'_, TreeSnapshot<KernelSummary, Vec<f64>>>> = self
            .trees
            .iter()
            .map(|t| TreeFrontier::over(t.core(), t.query_model(), x))
            .collect();
        run_anytime_over(
            frontiers,
            &self.priors,
            self.refinement,
            self.descent,
            budget,
            record_all,
        )
    }
}

impl AnytimeClassifier {
    /// Takes an epoch-pinned snapshot of every per-class tree plus the
    /// current priors.  Reader threads classify against the snapshot —
    /// bit-identically to this moment — while online learning keeps
    /// mutating the live trees.
    #[must_use]
    pub fn snapshot(&self) -> ClassifierSnapshot {
        ClassifierSnapshot {
            trees: self.trees().iter().map(BayesTree::snapshot).collect(),
            priors: self.priors().to_vec(),
            refinement: self.config().refinement,
            descent: self.config().descent,
            dims: self.dims(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierConfig;
    use bt_data::synth::blobs::BlobConfig;
    use bt_index::PageGeometry;

    fn sample_points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 8.0 };
                vec![c + (i % 7) as f64 * 0.1, c + (i % 5) as f64 * 0.1]
            })
            .collect()
    }

    #[test]
    fn tree_snapshot_answers_stay_frozen_under_inserts() {
        let mut tree: BayesTree =
            BayesTree::build_iterative(&sample_points(150), 2, PageGeometry::from_fanout(4, 4));
        let snapshot = tree.snapshot();
        let frozen = snapshot.anytime_density(&[0.4, 0.4], DescentStrategy::default(), 12);
        tree.insert_batch(sample_points(150));
        assert_eq!(
            snapshot.anytime_density(&[0.4, 0.4], DescentStrategy::default(), 12),
            frozen
        );
        // The live tree genuinely moved on.
        assert_ne!(tree.len(), snapshot.len());
        assert!(tree.core().retired_nodes() > 0);
    }

    #[test]
    fn classifier_snapshot_matches_the_live_classifier() {
        let data = BlobConfig::new(3, 4)
            .samples_per_class(60)
            .seed(3)
            .generate();
        let mut clf = AnytimeClassifier::train(&data, &ClassifierConfig::default());
        let snapshot = clf.snapshot();
        let queries: Vec<Vec<f64>> = (0..10).map(|i| data.feature(i).to_vec()).collect();
        let frozen: Vec<Classification> = queries
            .iter()
            .map(|q| snapshot.classify_with_budget(q, 15))
            .collect();
        for (q, expected) in queries.iter().zip(&frozen) {
            assert_eq!(&clf.classify_with_budget(q, 15), expected);
        }
        // Keep learning, then re-check: the snapshot must not move.
        for i in 0..30 {
            clf.learn_one(data.feature(i).to_vec(), i % 3);
        }
        for (q, expected) in queries.iter().zip(&frozen) {
            assert_eq!(&snapshot.classify_with_budget(q, 15), expected);
        }
    }

    #[test]
    fn snapshots_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BayesTreeSnapshot>();
        assert_send_sync::<ShardedBayesTreeSnapshot>();
        assert_send_sync::<ClassifierSnapshot>();
    }

    #[test]
    fn bulk_loaded_trees_publish_an_epoch_covering_their_nodes() {
        use crate::bulk::{build_tree, BulkLoadMethod};
        let points = sample_points(120);
        for method in BulkLoadMethod::all() {
            let tree = build_tree(&points, 2, PageGeometry::from_fanout(4, 4), method, 7);
            let snapshot = tree.snapshot();
            assert!(
                snapshot.epoch() >= 1,
                "{method:?}: bulk build must publish an epoch"
            );
            for id in snapshot.core().reachable() {
                assert!(
                    snapshot.core().node_version(id) <= snapshot.epoch(),
                    "{method:?}: node {id} stamped past the published epoch"
                );
            }
        }
    }

    #[test]
    fn classifier_reports_the_node_reads_it_spent() {
        let data = BlobConfig::new(3, 4)
            .samples_per_class(60)
            .seed(9)
            .generate();
        let config = ClassifierConfig {
            geometry: Some(PageGeometry::from_fanout(4, 4)),
            ..ClassifierConfig::default()
        };
        let clf = AnytimeClassifier::train(&data, &config);
        let c = clf.classify_with_budget(data.feature(0), 15);
        assert!(c.nodes_read > 0, "budgeted classification spends reads");
        assert!(c.nodes_read <= 15);
        let snap = clf.snapshot().classify_with_budget(data.feature(0), 15);
        assert_eq!(snap.nodes_read, c.nodes_read);
        // The reported count matches the trace's step count.
        let trace = clf.anytime_trace(data.feature(0), 15);
        assert_eq!(c.nodes_read, trace.labels.len() - 1);
    }
}
