//! Perf-trajectory recorder for the quantised stored-summary mode.
//!
//! Runs the same streaming workload three times — on `f64`-, `f32`- and
//! `Quantized`-stored [`BayesTree`]s — and writes the numbers the
//! quantisation PR is gated on to `BENCH_10.json` (current directory, repo
//! root when run via `cargo run`): batched insert throughput, certified
//! anytime outlier queries per second, the mean certified bound width of a
//! budgeted density batch (the cost axis: quantised boxes are wider), and
//! the bytes each block-scored directory entry streams out of the epoch
//! pages (520 / 264 / 136 at dims 16).  The JSON is committed so the
//! trajectory of the numbers is recorded next to the code that produced
//! them.
//!
//! The query passes of the three modes are **interleaved** (f64 pass, f32
//! pass, quantised pass, repeat) and each mode keeps its best round, so
//! wall-clock drift on a shared machine biases every mode equally.
//!
//! With `BENCH_SMOKE` set in the environment the binary runs a reduced
//! workload and skips the JSON write — the CI smoke that proves the
//! recorder still runs, without committing numbers from a CI machine.

use bayestree::{BayesTree, DescentStrategy, Quantized, StoredElement};
use bayestree_bench::record::{best_of_3, BenchRecord, SplitMix};
use bt_anytree::OutlierVerdict;
use bt_data::stream::DriftingStream;
use std::time::Instant;

// Each mode runs at its own 4 KiB-page geometry
// (`BayesTree::paged_geometry`): at dims 16 a page holds 7 entries at f64,
// 15 at f32 and 29 quantised, which is where 16-bit storage pays — every
// budgeted node read covers ~4x the summary mass of the full-width mode,
// so bounds converge (and verdicts certify) in fewer reads.
const DIMS: usize = 16;
const BATCH_SIZE: usize = 256;
const QUERY_BUDGET: usize = 48;

struct Workload {
    stream_len: usize,
    queries: usize,
    rounds: usize,
    smoke: bool,
}

fn workload_shape() -> Workload {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        Workload {
            stream_len: 4_000,
            queries: 256,
            rounds: 1,
            smoke: true,
        }
    } else {
        Workload {
            stream_len: 64_000,
            queries: 4096,
            rounds: 5,
            smoke: false,
        }
    }
}

fn stream_points(stream_len: usize) -> Vec<Vec<f64>> {
    DriftingStream::new(4, DIMS, 0.3, 0.002, 17)
        .generate(stream_len)
        .into_iter()
        .map(|(p, _)| p)
        .collect()
}

fn query_workload(points: &[Vec<f64>], queries: usize) -> Vec<Vec<f64>> {
    let mut rng = SplitMix(0xbeef);
    (0..queries)
        .map(|i| {
            let mut q = points[(i * 13) % points.len()].clone();
            for v in &mut q {
                *v += rng.next_f64() - 0.5;
            }
            q
        })
        .collect()
}

fn build_tree<E: StoredElement>(points: &[Vec<f64>]) -> BayesTree<E> {
    let mut tree: BayesTree<E> = BayesTree::new(DIMS, BayesTree::<E>::paged_geometry(DIMS));
    for chunk in points.chunks(BATCH_SIZE) {
        tree.insert_batch(chunk.to_vec());
    }
    tree
}

/// One timed anytime-outlier pass over the whole query workload; returns
/// (seconds, certified verdicts).
fn query_pass<E: StoredElement>(
    tree: &BayesTree<E>,
    queries: &[Vec<f64>],
    threshold: f64,
) -> (f64, usize) {
    let start = Instant::now();
    let mut certified = 0usize;
    for q in queries {
        let score = tree.outlier_score(q, threshold, QUERY_BUDGET);
        if score.verdict != OutlierVerdict::Undecided {
            certified += 1;
        }
    }
    (start.elapsed().as_secs_f64(), certified)
}

/// Mean certified bound width of one budgeted density batch — the accuracy
/// cost of narrowed summaries (wider stored boxes mean wider intervals at
/// the same budget).
fn mean_bound_width<E: StoredElement>(tree: &BayesTree<E>, queries: &[Vec<f64>]) -> f64 {
    let (answers, _) = tree.density_batch(queries, DescentStrategy::default(), QUERY_BUDGET);
    answers
        .iter()
        .map(bt_anytree::QueryAnswer::uncertainty)
        .sum::<f64>()
        / answers.len() as f64
}

/// The bytes one block-scored directory entry streams out of its epoch
/// page: the stored CF sums (LS + SS) and MBR corners at the stored width,
/// plus the full-width weight.
fn bytes_per_scored_entry<E: StoredElement>() -> usize {
    std::mem::size_of::<f64>() + DIMS * 4 * E::SCALAR_BYTES
}

fn main() {
    let shape = workload_shape();
    let points = stream_points(shape.stream_len);
    let queries = query_workload(&points, shape.queries);

    eprintln!(
        "bench_10: building trees ({} objects per mode)...",
        shape.stream_len
    );
    let wide_insert_secs = best_of_3(|| build_tree::<f64>(&points).len());
    let narrow_insert_secs = best_of_3(|| build_tree::<f32>(&points).len());
    let quant_insert_secs = best_of_3(|| build_tree::<Quantized>(&points).len());
    let wide = build_tree::<f64>(&points);
    let narrow = build_tree::<f32>(&points);
    let quant = build_tree::<Quantized>(&points);
    let threshold = wide.full_kernel_density(&queries[0]) * 0.05;

    eprintln!(
        "bench_10: {} interleaved query rounds ({} queries each)...",
        shape.rounds,
        queries.len()
    );
    let (mut wide_secs, mut narrow_secs, mut quant_secs) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let (mut wide_certified, mut narrow_certified, mut quant_certified) = (0usize, 0usize, 0usize);
    for round in 0..shape.rounds {
        let (ws, wc) = query_pass(&wide, &queries, threshold);
        let (ns, nc) = query_pass(&narrow, &queries, threshold);
        let (qs, qc) = query_pass(&quant, &queries, threshold);
        wide_secs = wide_secs.min(ws);
        narrow_secs = narrow_secs.min(ns);
        quant_secs = quant_secs.min(qs);
        (wide_certified, narrow_certified, quant_certified) = (wc, nc, qc);
        eprintln!("bench_10:   round {round}: f64 {ws:.3}s  f32 {ns:.3}s  quantized {qs:.3}s");
    }

    let wide_width = mean_bound_width(&wide, &queries);
    let narrow_width = mean_bound_width(&narrow, &queries);
    let quant_width = mean_bound_width(&quant, &queries);

    let wide_qps = wide_certified as f64 / wide_secs;
    let narrow_qps = narrow_certified as f64 / narrow_secs;
    let quant_qps = quant_certified as f64 / quant_secs;

    if shape.smoke {
        eprintln!(
            "bench_10: smoke run: f64 {wide_qps:.0} q/s, f32 {narrow_qps:.0} q/s, \
             quantized {quant_qps:.0} q/s; no record written"
        );
        assert!(
            quant_certified > 0,
            "quantised mode certified no verdicts on the smoke workload"
        );
        return;
    }

    let json = BenchRecord::new("quantized_summaries")
        .config("dims", DIMS)
        .config("stream_len", shape.stream_len)
        .config("batch_size", BATCH_SIZE)
        .config("query_budget", QUERY_BUDGET)
        .config("query_rounds", shape.rounds)
        .field(
            "f64_inserts_per_sec",
            format!("{:.1}", points.len() as f64 / wide_insert_secs),
        )
        .field(
            "f32_inserts_per_sec",
            format!("{:.1}", points.len() as f64 / narrow_insert_secs),
        )
        .field(
            "quantized_inserts_per_sec",
            format!("{:.1}", points.len() as f64 / quant_insert_secs),
        )
        .field("f64_certified_queries_per_sec", format!("{wide_qps:.1}"))
        .field("f32_certified_queries_per_sec", format!("{narrow_qps:.1}"))
        .field(
            "quantized_certified_queries_per_sec",
            format!("{quant_qps:.1}"),
        )
        .field("f64_certified_queries", format!("{wide_certified}"))
        .field("f32_certified_queries", format!("{narrow_certified}"))
        .field("quantized_certified_queries", format!("{quant_certified}"))
        .field("total_queries", format!("{}", queries.len()))
        .field("f64_mean_bound_width", format!("{wide_width:.3e}"))
        .field("f32_mean_bound_width", format!("{narrow_width:.3e}"))
        .field("quantized_mean_bound_width", format!("{quant_width:.3e}"))
        .field(
            "f64_bytes_per_scored_entry",
            format!("{}", bytes_per_scored_entry::<f64>()),
        )
        .field(
            "f32_bytes_per_scored_entry",
            format!("{}", bytes_per_scored_entry::<f32>()),
        )
        .field(
            "quantized_bytes_per_scored_entry",
            format!("{}", bytes_per_scored_entry::<Quantized>()),
        )
        .field(
            "quantized_over_f32_certified_ratio",
            format!("{:.3}", quant_qps / narrow_qps.max(1e-12)),
        )
        .field(
            "quantized_over_f64_certified_ratio",
            format!("{:.3}", quant_qps / wide_qps.max(1e-12)),
        )
        .write("BENCH_10.json");
    println!("{json}");
    eprintln!("bench_10: wrote BENCH_10.json");
}
