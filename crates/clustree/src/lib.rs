//! # Anytime stream clustering on an index structure
//!
//! Section 4.2 of the paper lays out how the Bayes-tree idea extends to
//! *unsupervised* stream mining: keep a hierarchy of cluster features in an
//! index, decay old data exponentially, "park" insertion objects in inner
//! nodes when the stream is too fast and take them along on a later descent,
//! store snapshots in a pyramidal time frame, and run a density-based offline
//! clustering over the fine-grained leaf-level cluster features.  (This is
//! the research direction that later became ClusTree.)
//!
//! This crate implements that extension:
//!
//! * [`microcluster::MicroCluster`] — a decaying cluster feature with a
//!   timestamp,
//! * [`tree::ClusTree`] — the anytime index: budgeted insertion with
//!   hitchhiker buffers, exponential decay, irrelevance-based entry reuse and
//!   R*-style splits when time permits,
//! * [`snapshot::SnapshotStore`] — the pyramidal time frame,
//! * [`offline::weighted_dbscan`] — the offline macro-clustering component
//!   over micro-clusters,
//! * [`query::ClusQueryModel`] — the micro-cluster instantiation of the
//!   shared anytime query engine ([`bt_anytree::query`]): anytime k-NN
//!   micro-cluster retrieval at any tree level
//!   ([`ClusTree::anytime_knn`]), budget-bracketed density scores with
//!   certain bounds ([`ClusTree::anytime_density`]) and anytime outlier
//!   scoring ([`ClusTree::outlier_score`]); [`ShardedClusTree`] refines
//!   per-shard frontiers in parallel and folds them.
//!
//! Because the index is the shared [`bt_anytree::AnytimeTree`] core, every
//! [`ClusTree`] also inherits the `bt-obs` instrumentation: budgeted
//! insert batches, anytime k-NN/density/outlier queries and snapshot
//! refreshes record `bt_*` metrics into the process-global registry at
//! batch/query boundaries.  See `docs/OBSERVABILITY.md` for the catalogue
//! and cost contract.
//!
//! ```
//! use clustree::{ClusTree, ClusTreeConfig};
//!
//! let mut tree = ClusTree::new(2, ClusTreeConfig::default());
//! // A fast stream: every object gets a budget of 3 node descents.
//! for i in 0..500 {
//!     let x = if i % 2 == 0 { 0.0 } else { 10.0 };
//!     tree.insert(&[x + (i % 7) as f64 * 0.05, x], i as f64, 3);
//! }
//! assert!(tree.num_micro_clusters() >= 2);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod microcluster;
pub mod offline;
pub mod query;
pub mod sharded;
pub mod snapshot;
pub mod tree;
pub mod view;

pub use microcluster::{DecayCtx, MicroCluster};
pub use offline::{weighted_dbscan, DbscanConfig, MacroClustering};
pub use query::{ClusQueryModel, ClusterNeighbor, KnnAnswer};
pub use sharded::ShardedClusTree;
pub use snapshot::SnapshotStore;
pub use tree::{BatchOutcome, ClusTree, ClusTreeConfig, DepthHistogram, InsertOutcome};
pub use view::{ClusTreeSnapshot, ShardedClusTreeSnapshot};
