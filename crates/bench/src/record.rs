//! Shared plumbing for the `bench_*` perf-trajectory recorder binaries.
//!
//! Each `bench_N` binary measures the handful of numbers its PR is gated on
//! and writes them to `BENCH_N.json` in the current directory (repo root
//! when run via `cargo run`); the JSON is committed so the trajectory of the
//! numbers is recorded next to the code that produced them.  The binaries
//! share the same skeleton — a dependency-free deterministic generator, a
//! best-of-3 wall-clock measurement, and a flat `{bench, config, fields...}`
//! JSON layout — which lives here so it exists exactly once.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Tiny deterministic generator (SplitMix64) so the binaries need no RNG
/// dependency.
pub struct SplitMix(pub u64);

impl SplitMix {
    /// The next uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Best-of-3 wall-clock seconds for one closure (its `usize` result is
/// black-boxed so the work cannot be optimised away).
pub fn best_of_3(mut run: impl FnMut() -> usize) -> f64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            black_box(run());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Builder for the committed `BENCH_N.json` records.
///
/// The layout is fixed — a `bench` name, a nested `config` object, then the
/// measured fields in insertion order — so every recorder emits the same
/// schema.  Values are passed pre-rendered, which keeps the caller in
/// control of the decimal places each number is committed with.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    bench: String,
    bin: String,
    git_rev: String,
    cpu: Vec<(&'static str, bool)>,
    config: Vec<(String, String)>,
    fields: Vec<(String, String)>,
}

/// The CPU features the SIMD dispatch keys on, as detected at run time —
/// stamped into every record so cross-machine ratios in the committed
/// trajectory are interpretable.
#[must_use]
pub fn detected_cpu_features() -> Vec<(&'static str, bool)> {
    #[cfg(target_arch = "x86_64")]
    {
        vec![
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
        ]
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        vec![("avx2", false), ("fma", false)]
    }
}

/// The file stem of the running executable — stamped into every record so
/// a committed JSON names the binary that produced it.
#[must_use]
pub fn bench_binary_name() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "unknown".to_string())
}

/// The git revision of the tree the binary ran in (short hash, `-dirty`
/// suffix when the working tree has uncommitted changes, `unknown` outside
/// a repository) — stamped into every record so a committed JSON is
/// traceable to the code that produced it.
#[must_use]
pub fn git_revision() -> String {
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|rev| !rev.is_empty());
    let Some(rev) = rev else {
        return "unknown".to_string();
    };
    let dirty = std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .map(|out| out.status.success() && !out.stdout.is_empty())
        .unwrap_or(false);
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}

impl BenchRecord {
    /// An empty record for the benchmark called `bench`, stamped with the
    /// running binary's name, the git revision and the detected CPU
    /// features.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            bin: bench_binary_name(),
            git_rev: git_revision(),
            cpu: detected_cpu_features(),
            config: Vec::new(),
            fields: Vec::new(),
        }
    }

    /// Appends one `config` entry (workload shape, not a measurement).
    #[must_use]
    pub fn config(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends one measured field with a pre-rendered JSON value (e.g.
    /// `format!("{v:.3}")`).
    #[must_use]
    pub fn field(mut self, key: &str, rendered: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), rendered.into()));
        self
    }

    /// Renders the record as pretty-printed JSON (trailing newline
    /// included).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(out, "  \"bin\": \"{}\",", self.bin);
        let _ = writeln!(out, "  \"git_rev\": \"{}\",", self.git_rev);
        out.push_str("  \"cpu\": {");
        for (i, (key, value)) in self.cpu.iter().enumerate() {
            let comma = if i + 1 < self.cpu.len() { ", " } else { "" };
            let _ = write!(out, "\"{key}\": {value}{comma}");
        }
        out.push_str("},\n");
        out.push_str("  \"config\": {\n");
        for (i, (key, value)) in self.config.iter().enumerate() {
            let comma = if i + 1 < self.config.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{key}\": {value}{comma}");
        }
        out.push_str("  },\n");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            let comma = if i + 1 < self.fields.len() { "," } else { "" };
            let _ = writeln!(out, "  \"{key}\": {value}{comma}");
        }
        out.push_str("}\n");
        out
    }

    /// Writes the record to `path` and returns the JSON that was written.
    ///
    /// Records stamped from a dirty working tree are still written (local
    /// iteration must stay cheap) but earn a loud warning: a committed
    /// `BENCH_N.json` whose `git_rev` ends in `-dirty` is not traceable to
    /// any commit, so regenerate it from a clean tree before committing.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write(&self, path: &str) -> String {
        if self.git_rev.ends_with("-dirty") {
            eprintln!(
                "warning: {path} was produced from a dirty working tree (git_rev {}); \
                 regenerate it from a clean tree before committing the record",
                self.git_rev
            );
        }
        let json = self.to_json();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_in_unit_range() {
        let mut a = SplitMix(0x5eed);
        let mut b = SplitMix(0x5eed);
        for _ in 0..100 {
            let x = a.next_f64();
            assert_eq!(x.to_bits(), b.next_f64().to_bits());
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn record_renders_the_committed_layout() {
        let json = BenchRecord::new("demo")
            .config("dims", 8)
            .config("stream_len", 8000)
            .field("inserts_per_sec", format!("{:.1}", 1234.5678))
            .field("ratio", format!("{:.3}", 1.8765))
            .to_json();
        let provenance = format!(
            "  \"bin\": \"{}\",\n  \"git_rev\": \"{}\",\n",
            bench_binary_name(),
            git_revision()
        );
        let cpu = detected_cpu_features();
        let cpu_line = format!(
            "  \"cpu\": {{\"avx2\": {}, \"fma\": {}}},\n",
            cpu[0].1, cpu[1].1
        );
        assert_eq!(
            json,
            format!(
                "{{\n  \"bench\": \"demo\",\n{provenance}{cpu_line}  \"config\": {{\n    \
                 \"dims\": 8,\n    \"stream_len\": 8000\n  }},\n  \"inserts_per_sec\": 1234.6,\n  \
                 \"ratio\": 1.877\n}}\n"
            )
        );
    }

    #[test]
    fn provenance_stamps_are_never_empty() {
        assert!(!bench_binary_name().is_empty());
        let rev = git_revision();
        assert!(!rev.is_empty());
        // Inside a repository the stamp is a hex hash with an optional
        // -dirty suffix; outside it degrades to the literal `unknown`.
        let hash = rev.strip_suffix("-dirty").unwrap_or(&rev);
        assert!(hash == "unknown" || hash.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn best_of_3_returns_a_positive_wall_clock() {
        let secs = best_of_3(|| (0..1000).sum::<usize>());
        assert!(secs >= 0.0 && secs.is_finite());
    }
}
