//! Stream simulation.
//!
//! The paper distinguishes *constant* streams (fixed inter-arrival time) from
//! *varying* streams (fluctuating amount of data per time unit, e.g. Poisson
//! arrivals) — the case anytime algorithms are designed for (Section 1).  The
//! interruption model used throughout the evaluation counts *node reads*:
//! an object arriving `dt` time units before the next one may refine its
//! model by `floor(dt / cost_per_node)` nodes.
//!
//! [`StreamSimulator`] turns a [`Dataset`] into a sequence of
//! [`StreamItem`]s carrying that per-object node budget, either with constant
//! or exponentially distributed (Poisson process) inter-arrival times.
//! [`DriftingStream`] additionally moves the class centroids over time to
//! exercise the clustering extension's decay machinery.

use crate::dataset::Dataset;
use bt_stats::gaussian::standard_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One stream arrival: an observation, its label, its arrival time and the
/// node budget available before the next arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamItem {
    /// The observation.
    pub features: Vec<f64>,
    /// Its true class label (used for evaluation, not given to the classifier).
    pub label: usize,
    /// Arrival time in abstract time units.
    pub arrival_time: f64,
    /// Number of tree nodes that may be read before the next arrival.
    pub node_budget: usize,
}

/// Common interface of the stream simulators.
pub trait StreamSimulator {
    /// Produces the stream of arrivals for `dataset` in its current order.
    fn simulate(&self, dataset: &Dataset) -> Vec<StreamItem>;
}

/// A constant-rate stream: every object gets exactly the same node budget.
#[derive(Debug, Clone, Copy)]
pub struct ConstantStream {
    /// Inter-arrival time between consecutive objects.
    pub inter_arrival: f64,
    /// Time needed to read one node.
    pub cost_per_node: f64,
}

impl ConstantStream {
    /// Creates a constant stream with the given inter-arrival time and
    /// per-node cost.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not positive.
    #[must_use]
    pub fn new(inter_arrival: f64, cost_per_node: f64) -> Self {
        assert!(inter_arrival > 0.0, "inter-arrival time must be positive");
        assert!(cost_per_node > 0.0, "per-node cost must be positive");
        Self {
            inter_arrival,
            cost_per_node,
        }
    }

    /// The node budget every object receives.
    #[must_use]
    pub fn budget(&self) -> usize {
        (self.inter_arrival / self.cost_per_node).floor() as usize
    }
}

impl StreamSimulator for ConstantStream {
    fn simulate(&self, dataset: &Dataset) -> Vec<StreamItem> {
        let budget = self.budget();
        dataset
            .iter()
            .enumerate()
            .map(|(i, (f, &l))| StreamItem {
                features: f.to_vec(),
                label: l,
                arrival_time: i as f64 * self.inter_arrival,
                node_budget: budget,
            })
            .collect()
    }
}

/// A Poisson-process stream: exponential inter-arrival times, so node budgets
/// vary from object to object (the "varying stream" of the paper).
#[derive(Debug, Clone, Copy)]
pub struct PoissonStream {
    /// Expected number of arrivals per time unit.
    pub rate: f64,
    /// Time needed to read one node.
    pub cost_per_node: f64,
    /// Maximum node budget handed to any single object (guards against the
    /// unbounded tail of the exponential distribution).
    pub max_budget: usize,
    /// RNG seed, so streams are reproducible.
    pub seed: u64,
}

impl PoissonStream {
    /// Creates a Poisson stream with the given arrival rate and per-node cost.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `cost_per_node` is not positive.
    #[must_use]
    pub fn new(rate: f64, cost_per_node: f64, seed: u64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        assert!(cost_per_node > 0.0, "per-node cost must be positive");
        Self {
            rate,
            cost_per_node,
            max_budget: 10_000,
            seed,
        }
    }

    /// Expected node budget per object.
    #[must_use]
    pub fn expected_budget(&self) -> f64 {
        1.0 / (self.rate * self.cost_per_node)
    }
}

impl StreamSimulator for PoissonStream {
    fn simulate(&self, dataset: &Dataset) -> Vec<StreamItem> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut time = 0.0;
        let mut items = Vec::with_capacity(dataset.len());
        for (f, &l) in dataset.iter() {
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = 1.0 - rng.random::<f64>();
            let dt = -u.ln() / self.rate;
            let budget = ((dt / self.cost_per_node).floor() as usize).min(self.max_budget);
            items.push(StreamItem {
                features: f.to_vec(),
                label: l,
                arrival_time: time,
                node_budget: budget,
            });
            time += dt;
        }
        items
    }
}

/// A synthetic evolving stream for the clustering extension: `clusters`
/// Gaussian sources whose centres drift with constant random velocity.
#[derive(Debug, Clone)]
pub struct DriftingStream {
    /// Number of Gaussian sources.
    pub clusters: usize,
    /// Dimensionality of the generated points.
    pub dims: usize,
    /// Standard deviation of each source.
    pub spread: f64,
    /// Distance each centre moves per emitted point.
    pub drift_per_item: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DriftingStream {
    /// Creates a drifting stream generator.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` or `dims` is zero, or `spread` is not positive.
    #[must_use]
    pub fn new(clusters: usize, dims: usize, spread: f64, drift_per_item: f64, seed: u64) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        assert!(dims > 0, "need at least one dimension");
        assert!(spread > 0.0, "spread must be positive");
        Self {
            clusters,
            dims,
            spread,
            drift_per_item,
            seed,
        }
    }

    /// Generates `count` points; the returned label is the source cluster.
    #[must_use]
    pub fn generate(&self, count: usize) -> Vec<(Vec<f64>, usize)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Initial centres spread out on a coarse grid, velocities random.
        let mut centers: Vec<Vec<f64>> = (0..self.clusters)
            .map(|c| {
                (0..self.dims)
                    .map(|d| ((c * 7 + d * 3) % 10) as f64 + rng.random::<f64>())
                    .collect()
            })
            .collect();
        let velocities: Vec<Vec<f64>> = (0..self.clusters)
            .map(|_| {
                let v: Vec<f64> = (0..self.dims).map(|_| standard_normal(&mut rng)).collect();
                let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
                v.iter().map(|x| x / norm * self.drift_per_item).collect()
            })
            .collect();

        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let c = i % self.clusters;
            let point: Vec<f64> = (0..self.dims)
                .map(|d| centers[c][d] + self.spread * standard_normal(&mut rng))
                .collect();
            out.push((point, c));
            for d in 0..self.dims {
                centers[c][d] += velocities[c][d];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::generic_class_names;

    fn dataset(n: usize) -> Dataset {
        let features: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        Dataset::from_parts("s", 1, generic_class_names(2), features, labels)
    }

    #[test]
    fn constant_stream_gives_uniform_budgets() {
        let stream = ConstantStream::new(10.0, 2.0);
        let items = stream.simulate(&dataset(5));
        assert_eq!(items.len(), 5);
        assert!(items.iter().all(|i| i.node_budget == 5));
        assert_eq!(items[3].arrival_time, 30.0);
    }

    #[test]
    fn poisson_stream_varies_budgets() {
        let stream = PoissonStream::new(0.5, 0.1, 42);
        let items = stream.simulate(&dataset(200));
        let budgets: Vec<usize> = items.iter().map(|i| i.node_budget).collect();
        let min = budgets.iter().min().unwrap();
        let max = budgets.iter().max().unwrap();
        assert!(max > min, "Poisson budgets should vary");
        // Mean budget should be near 1 / (rate * cost) = 20.
        let mean: f64 = budgets.iter().sum::<usize>() as f64 / budgets.len() as f64;
        assert!((mean - 20.0).abs() < 5.0, "mean budget {mean}");
    }

    #[test]
    fn poisson_stream_is_reproducible() {
        let a = PoissonStream::new(1.0, 1.0, 7).simulate(&dataset(50));
        let b = PoissonStream::new(1.0, 1.0, 7).simulate(&dataset(50));
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_arrival_times_increase() {
        let items = PoissonStream::new(2.0, 0.5, 3).simulate(&dataset(50));
        for w in items.windows(2) {
            assert!(w[1].arrival_time >= w[0].arrival_time);
        }
    }

    #[test]
    fn stream_preserves_labels_and_features() {
        let ds = dataset(10);
        let items = ConstantStream::new(1.0, 1.0).simulate(&ds);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.features, ds.feature(i));
            assert_eq!(item.label, ds.label(i));
        }
    }

    #[test]
    fn drifting_stream_centres_actually_move() {
        let gen = DriftingStream::new(2, 2, 0.1, 0.5, 11);
        let pts = gen.generate(400);
        // Average position of cluster 0 early vs late should differ clearly.
        let early: Vec<&Vec<f64>> = pts[..100]
            .iter()
            .filter(|(_, c)| *c == 0)
            .map(|(p, _)| p)
            .collect();
        let late: Vec<&Vec<f64>> = pts[300..]
            .iter()
            .filter(|(_, c)| *c == 0)
            .map(|(p, _)| p)
            .collect();
        let mean = |v: &[&Vec<f64>]| {
            let mut m = [0.0; 2];
            for p in v {
                m[0] += p[0];
                m[1] += p[1];
            }
            m.iter().map(|x| x / v.len() as f64).collect::<Vec<f64>>()
        };
        let em = mean(&early);
        let lm = mean(&late);
        let dist = ((em[0] - lm[0]).powi(2) + (em[1] - lm[1]).powi(2)).sqrt();
        assert!(dist > 5.0, "centres drifted only {dist}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_panics() {
        let _ = PoissonStream::new(0.0, 1.0, 0);
    }
}
