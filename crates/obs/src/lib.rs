//! # bt-obs — observability for the anytime index stack
//!
//! The paper's anytime contract is an observability claim: every query can
//! report a certified `[lower, upper]` answer *as a function of budget
//! spent*.  This crate turns that claim into first-class telemetry shared
//! by every layer of the workspace:
//!
//! * [`registry`] — a lock-free metrics registry: atomic [`Counter`]s,
//!   [`Gauge`]s and log-bucketed [`Histogram`]s registered by name in a
//!   process-global [`Registry`].  The only lock sits at
//!   registration/exposition time; recording is relaxed atomics.
//! * [`hist`] — power-of-two-bucketed histograms for quantities that span
//!   decades (latency in nanoseconds, bound widths in log-space), with an
//!   unsynchronised [`LocalHistogram`] mirror for per-shard buffering.
//! * [`handle`] — [`MetricsHandle`], a per-shard/per-worker buffer that
//!   accumulates counter increments and histogram observations locally and
//!   merges them into the global registry with one atomic op per metric at
//!   batch/query boundaries.
//! * [`trace`] — structured span events for the batch-insert and
//!   query-refinement lifecycles (`descend`, `finish_batch`, `split`,
//!   `gather`, `refine_step`, `snapshot_refresh`) delivered to a pluggable
//!   [`TraceSubscriber`]; the default subscriber is a bounded in-memory
//!   ring.  The `refine_step` stream is the paper's quality-over-time
//!   curve as events: (budget spent, bound width, certified?) per round.
//! * [`expo`] — exposition: a point-in-time [`Snapshot`] of the registry
//!   rendered as Prometheus text format or JSON (with a round-trip
//!   parser), plus [`Snapshot::delta_since`] for interval accounting.
//! * [`tree_metrics`] — the metric catalogue the tree layers record into
//!   (see `docs/OBSERVABILITY.md` for the full list and naming rules).
//!
//! ## Cost contract
//!
//! * **Disabled at runtime** ([`set_enabled`]`(false)`): every recording
//!   call is one relaxed atomic load and a predictable branch.
//! * **Compiled out** (`--no-default-features`): [`metrics_compiled`] is
//!   `false` and the guard folds to a constant, so recording paths vanish;
//!   registration and snapshots still work but report zeros.
//! * **Enabled**: hot loops stay untouched — the tree layers record at
//!   batch/query boundaries only, through existing `DescentStats` /
//!   `QueryStats` deltas or a [`MetricsHandle`].
//!
//! Tracing has its own flag ([`set_tracing`], default off) because span
//! events fire per node visit, not per boundary.

pub mod expo;
pub mod handle;
pub mod hist;
pub mod registry;
pub mod trace;
pub mod tree_metrics;

pub use expo::{MetricSnapshot, Snapshot, ValueSnapshot};
pub use handle::{CounterId, HistogramId, MetricsHandle};
pub use hist::{Histogram, HistogramSpec, LocalHistogram};
pub use registry::{enabled, set_enabled, Counter, Gauge, Registry};
pub use trace::{
    set_trace_subscriber, set_tracing, trace, trace_ring, tracing, TraceEvent, TraceRing,
    TraceSubscriber,
};
pub use tree_metrics::{tree_metrics, TreeMetrics};

/// Whether the recording paths were compiled in (`metrics` feature).
///
/// With the feature off this is `false` and every guard that checks it
/// folds away at compile time — the no-op contract of
/// `--no-default-features` builds.
#[must_use]
pub const fn metrics_compiled() -> bool {
    cfg!(feature = "metrics")
}
