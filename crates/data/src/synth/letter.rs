//! Synthetic stand-in for the UCI *Letter* recognition data set.
//!
//! Original: 20 000 images of capital letters described by 16 statistical
//! features, 26 balanced classes (Table 1).  With 26 classes in 16 dimensions
//! the classes overlap considerably; the paper reports 60–90 % anytime
//! accuracy (Figure 3), clearly harder than Pendigits.
//!
//! The stand-in therefore uses a lower separation-to-spread ratio and two
//! clusters per letter.

use crate::dataset::Dataset;
use crate::synth::{ClassMixtureConfig, DatasetSpec};

/// The Table 1 row for Letter.
#[must_use]
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "Letter",
        size: 20_000,
        classes: 26,
        features: 16,
        reference: "UCI KDD archive [12]",
    }
}

/// Generates a Letter-like data set with `samples` observations.
#[must_use]
pub fn generate(samples: usize, seed: u64) -> Dataset {
    let spec = spec();
    let mut config = ClassMixtureConfig::new(spec.name, spec.classes, spec.features);
    config.clusters_per_class = 4;
    config.separation = 15.0; // letter features are small integer counts (0..15)
    config.spread = 2.8;
    config.curvature = 1.5;
    config.seed = seed;
    config.generate(samples)
}

/// Generates the full-size stand-in (20 000 observations).
#[must_use]
pub fn generate_full(seed: u64) -> Dataset {
    generate(spec().size, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{pendigits, test_util};

    #[test]
    fn matches_table1_shape() {
        let ds = generate(2_600, 7);
        assert_eq!(ds.dims(), 16);
        assert_eq!(ds.num_classes(), 26);
        assert_eq!(ds.len(), 2_600);
    }

    #[test]
    fn classes_are_roughly_balanced() {
        let ds = generate(2_600, 1);
        let counts = ds.class_counts();
        assert!(
            counts.iter().all(|&c| (80..=120).contains(&c)),
            "{counts:?}"
        );
    }

    #[test]
    fn harder_than_pendigits() {
        // The Letter stand-in must be the harder problem, mirroring the
        // ordering of the paper's accuracy curves.
        let letter = generate(2_600, 5);
        let pend = pendigits::generate(2_000, 5);
        let acc_letter = test_util::knn_holdout_accuracy(&letter);
        let acc_pend = test_util::knn_holdout_accuracy(&pend);
        assert!(
            acc_letter < acc_pend,
            "letter {acc_letter} should be harder than pendigits {acc_pend}"
        );
    }
}
