//! Quantisation primitives for the 16-bit stored-summary mode.
//!
//! Two codecs live here, one per stored quantity:
//!
//! * **Block-exponent mantissas** for CF linear/squared-sum columns: a whole
//!   column shares one power-of-two step (the "block exponent", chosen from
//!   the column's maximum magnitude at quantise-on-write) and each component
//!   stores only a signed 16-bit mantissa.  Round-to-nearest, so the
//!   per-component error is bounded by `step / 2`; decoding `q * step` is
//!   *exact* in `f64` (a 15-bit integer times a power of two), which is what
//!   lets the decoded columns feed the bit-exactness-audited block kernels.
//! * **`bf16`-style corners** for MBR bounds: the top 16 bits of the `f32`
//!   representation (sign, 8-bit exponent, 7-bit mantissa), rounded
//!   *outward* — lower corners toward `-∞`, upper corners toward `+∞` — so a
//!   quantised box always encloses the exact one and the anytime
//!   `[lower, upper]` density bounds stay sound.  Unlike a per-node step,
//!   this rounding is a *value-deterministic monotone* function (the same
//!   corner value always rounds to the same grid point, and `x <= y` implies
//!   `round(x) <= round(y)`), which is exactly the property that makes
//!   parent boxes keep containing child boxes under independent re-encodes —
//!   the nesting the monotone-refinement contract of the query engine needs.
//!   A per-node (or parent-relative) corner step cannot give that guarantee:
//!   a child re-encoding with a different step than its parent may round a
//!   shared corner past the parent's.  Both codecs are idempotent: encoding
//!   an already-representable value returns it unchanged, so repeated
//!   decode/re-encode cycles do not drift.

/// Decodes a `bf16`-style corner (the top 16 bits of an `f32`) to `f64`.
///
/// Exact: every `bf16` value is representable in `f32` and therefore `f64`.
#[inline]
#[must_use]
pub fn bf16_decode(h: u16) -> f64 {
    f64::from(f32::from_bits(u32::from(h) << 16))
}

/// Whether a `bf16` bit pattern is a NaN (all-ones exponent, non-zero
/// mantissa) — the encoders must never step into this range.
#[inline]
fn bf16_is_nan(h: u16) -> bool {
    (h & 0x7F80) == 0x7F80 && (h & 0x7F) != 0
}

/// Maps `bf16` bits to an integer that is monotone in the represented value
/// (the standard sign-magnitude to biased trick), so stepping to the
/// neighbouring representable value is integer arithmetic.
#[inline]
fn bf16_sortable(h: u16) -> u16 {
    if h & 0x8000 != 0 {
        !h
    } else {
        h | 0x8000
    }
}

#[inline]
fn bf16_unsortable(s: u16) -> u16 {
    if s & 0x8000 != 0 {
        s & 0x7FFF
    } else {
        !s
    }
}

/// The next `bf16` toward `-∞`.
#[inline]
fn bf16_step_down(h: u16) -> u16 {
    bf16_unsortable(bf16_sortable(h).wrapping_sub(1))
}

/// The next `bf16` toward `+∞`.
#[inline]
fn bf16_step_up(h: u16) -> u16 {
    bf16_unsortable(bf16_sortable(h).wrapping_add(1))
}

/// The largest `bf16` value `<= x` (rounds toward `-∞`; saturates to `-∞`
/// below the representable range).  `x` must not be NaN.
#[must_use]
pub fn bf16_floor(x: f64) -> u16 {
    debug_assert!(!x.is_nan(), "cannot quantise a NaN corner");
    // Truncating an f32's mantissa rounds toward zero, and the f64 -> f32
    // conversion rounds to nearest: both errors are within one bf16 ulp, so
    // a couple of neighbour steps land on the exact floor.
    let mut h = ((x as f32).to_bits() >> 16) as u16;
    while bf16_decode(h) > x {
        h = bf16_step_down(h);
    }
    loop {
        let up = bf16_step_up(h);
        if bf16_is_nan(up) || bf16_decode(up) > x {
            break;
        }
        h = up;
    }
    canonicalize_zero(h)
}

/// Folds the `-0.0` bit pattern to `+0.0` so both zeros encode identically
/// (the sortable-integer stepping treats them as adjacent distinct values).
#[inline]
fn canonicalize_zero(h: u16) -> u16 {
    if h == 0x8000 {
        0x0000
    } else {
        h
    }
}

/// The smallest `bf16` value `>= x` (rounds toward `+∞`; saturates to `+∞`
/// above the representable range).  `x` must not be NaN.
#[must_use]
pub fn bf16_ceil(x: f64) -> u16 {
    debug_assert!(!x.is_nan(), "cannot quantise a NaN corner");
    let mut h = ((x as f32).to_bits() >> 16) as u16;
    while bf16_decode(h) < x {
        h = bf16_step_up(h);
    }
    loop {
        let down = bf16_step_down(h);
        if bf16_is_nan(down) || bf16_decode(down) < x {
            break;
        }
        h = down;
    }
    canonicalize_zero(h)
}

/// Headroom target for [`block_step`]: the largest mantissa magnitude the
/// step is chosen to produce, leaving slack below `i16::MAX` for the
/// round-to-nearest half-step.
pub const BLOCK_MANTISSA_TARGET: f64 = 32640.0;

/// The power-of-two block step (shared "block exponent") for a column whose
/// maximum absolute component is `maxabs`: the smallest power of two such
/// that every component's mantissa `round(v / step)` fits in an `i16`.
///
/// Degenerate columns (`maxabs == 0`, or non-finite) get step `1.0`.
#[must_use]
pub fn block_step(maxabs: f64) -> f64 {
    if maxabs <= 0.0 || !maxabs.is_finite() {
        return 1.0;
    }
    let step = (maxabs / BLOCK_MANTISSA_TARGET).log2().ceil().exp2();
    // `log2`/`ceil` run in floating point; guard the rounding edge so the
    // mantissa can never overflow the i16 after round-to-nearest.
    if maxabs / step > f64::from(i16::MAX) - 1.0 {
        step * 2.0
    } else {
        step
    }
}

/// Round-to-nearest mantissa of `v` against a [`block_step`] `step`.
#[inline]
#[must_use]
pub fn quantize_i16(v: f64, step: f64) -> i16 {
    debug_assert!(step > 0.0 && step.is_finite());
    // `as` saturates, so a pathological component can widen the error but
    // never wrap the mantissa.
    (v / step).round() as i16
}

/// Decodes a block-exponent mantissa: exact in `f64` (15-bit integer times a
/// power of two).
#[inline]
#[must_use]
pub fn dequantize_i16(q: i16, step: f64) -> f64 {
    f64::from(q) * step
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_codec_round_trips_representable_values() {
        for v in [0.0, 1.0, -1.0, 0.5, -2.75, 1024.0, 3.0e30, -4.5e-20] {
            let down = bf16_floor(v);
            let up = bf16_ceil(v);
            assert!(bf16_decode(down) <= v, "{v}: floor overshoots");
            assert!(bf16_decode(up) >= v, "{v}: ceil undershoots");
        }
        // Exactly representable values are fixed points of both directions.
        for h in [0x0000u16, 0x3F80, 0xBF80, 0x4000, 0x42C8, 0xC2C8] {
            let v = bf16_decode(h);
            assert_eq!(bf16_floor(v), h);
            assert_eq!(bf16_ceil(v), h);
        }
    }

    #[test]
    fn bf16_outward_rounding_brackets_within_one_ulp() {
        let mut state = 0x1234_5678_u64;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let mag = ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0e6;
            let lo = bf16_decode(bf16_floor(mag));
            let hi = bf16_decode(bf16_ceil(mag));
            assert!(
                lo <= mag && mag <= hi,
                "{mag} not bracketed by [{lo}, {hi}]"
            );
            // The bracket is at relative bf16 precision (2^-8 mantissa).
            let slack = mag.abs() * (1.0 / 128.0) + 1e-37;
            assert!(hi - lo <= slack, "{mag}: bracket [{lo}, {hi}] too wide");
        }
    }

    #[test]
    fn bf16_rounding_is_monotone() {
        // The nesting argument for quantised MBRs rests on monotonicity:
        // x <= y implies floor(x) <= floor(y) and ceil(x) <= ceil(y).
        let values = [
            -1.0e30, -5000.0, -1.5, -1.0e-25, 0.0, 7.25e-12, 0.3, 2.0, 999.75, 4.0e28,
        ];
        for pair in values.windows(2) {
            assert!(bf16_decode(bf16_floor(pair[0])) <= bf16_decode(bf16_floor(pair[1])));
            assert!(bf16_decode(bf16_ceil(pair[0])) <= bf16_decode(bf16_ceil(pair[1])));
        }
    }

    #[test]
    fn bf16_saturates_outside_the_f32_range() {
        assert_eq!(bf16_decode(bf16_ceil(1.0e300)), f64::INFINITY);
        assert_eq!(bf16_decode(bf16_floor(-1.0e300)), f64::NEG_INFINITY);
        // Floor of an over-range positive stays finite (the max bf16).
        assert!(bf16_decode(bf16_floor(1.0e300)).is_finite());
    }

    #[test]
    fn block_step_is_a_power_of_two_with_i16_headroom() {
        for maxabs in [1.0e-30, 0.001, 1.0, 42.0, 32640.0, 1.0e6, 3.0e12] {
            let step = block_step(maxabs);
            assert_eq!(step.log2().fract(), 0.0, "{maxabs}: step {step} not 2^k");
            let q = quantize_i16(maxabs, step);
            assert!(q.unsigned_abs() <= i16::MAX as u16);
            assert!((dequantize_i16(q, step) - maxabs).abs() <= step / 2.0);
        }
        assert_eq!(block_step(0.0), 1.0);
        assert_eq!(block_step(f64::NAN), 1.0);
    }

    #[test]
    fn block_quantisation_error_is_at_most_half_a_step() {
        let maxabs = 1234.5;
        let step = block_step(maxabs);
        let mut v = -maxabs;
        while v <= maxabs {
            let q = quantize_i16(v, step);
            assert!(
                (dequantize_i16(q, step) - v).abs() <= step / 2.0,
                "{v} decodes outside the half-step bound"
            );
            v += 0.37;
        }
    }

    #[test]
    fn dequantize_is_exact_for_every_mantissa() {
        let step = 0.25; // a power of two: q * step must be exact
        for q in [i16::MIN, -32000, -1, 0, 1, 2, 777, 32000, i16::MAX] {
            let v = dequantize_i16(q, step);
            assert_eq!(v, f64::from(q) * step);
            assert_eq!(quantize_i16(v, step), q, "re-encode of {q} drifted");
        }
    }
}
