//! Regenerates Figure 4: anytime accuracy on the Gender (top) and Covertype
//! (bottom) workloads, comparing global-best descent (`glo`) against
//! breadth-first traversal (`bft`) for the EMTopDown and Hilbert bulk loads
//! plus the iterative baseline.
//!
//! Usage: `figure4 [gender|covertype|both] [flags...]`

use bayestree_bench::RunOptions;
use bt_data::synth::Benchmark;
use bt_eval::curve::figure4_curves;
use bt_eval::{ascii_chart, curves_to_csv, improvement_summary};

fn run(benchmark: Benchmark, options: &RunOptions) {
    let dataset = benchmark.generate_scaled(options.scale, options.seed);
    let name = dataset.name().to_string();
    eprintln!(
        "figure4: {} stand-in with {} objects, {} classes, {} features",
        name,
        dataset.len(),
        dataset.num_classes(),
        dataset.dims()
    );
    let curves = figure4_curves(&dataset, &options.curve_config_for(dataset.dims()));

    println!("Figure 4 — anytime classification accuracy on {name} (glo vs bft)\n");
    println!("{}", ascii_chart(&curves, 20, 72));
    println!("accuracy after 0 / 25 / 50 / 100 nodes and mean over the curve:");
    for c in &curves {
        println!(
            "  {:<15} {:.3} / {:.3} / {:.3} / {:.3}   mean {:.3}",
            c.label,
            c.at(0),
            c.at(25),
            c.at(50),
            c.at(100),
            c.mean()
        );
    }
    let baseline = curves
        .iter()
        .find(|c| c.label == "Iterativ glo")
        .expect("baseline curve present");
    println!();
    println!(
        "{}",
        bt_eval::report::format_improvements(&improvement_summary(&name, baseline, &curves))
    );
    if options.csv {
        println!("{}", curves_to_csv(&curves));
    }
    println!();
}

fn main() {
    let options = RunOptions::from_env();
    let which = options
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("both");
    match which {
        "gender" => run(Benchmark::Gender, &options),
        "covertype" => run(Benchmark::Covertype, &options),
        "both" => {
            run(Benchmark::Gender, &options);
            run(Benchmark::Covertype, &options);
        }
        other => panic!("unknown workload '{other}': expected gender, covertype or both"),
    }
}
