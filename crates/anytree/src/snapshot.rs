//! Epoch-pinned tree snapshots: query a tree while a batch is in flight.
//!
//! A [`TreeSnapshot`] is the read side of the epoch-versioned arena
//! ([`crate::arena`]): taking one costs an [`ArenaSpine`] capture
//! (`O(chunks + pages)` pointer copies — no node payload is touched) plus
//! one pin of the published epoch in the tree's [`EpochRegistry`].  The
//! snapshot is an owned value — it borrows nothing from the tree — so it
//! can be sent to reader threads (`Send + Sync` whenever the payloads are)
//! and queried through the full anytime engine ([`TreeView`]) while the
//! writer keeps inserting batches into the live tree.
//!
//! **Isolation guarantee**: every answer computed against a snapshot is
//! bit-identical to the answer the live tree would have given at the moment
//! the snapshot was taken.  The writer never mutates a node the snapshot
//! can reach — copy-on-write retires the node onto a fresh epoch page and
//! repoints the slot table, leaving the pinned page untouched
//! (`tests/snapshot_isolation.rs` locks this down for both tree
//! instantiations and their sharded variants).
//!
//! **Reclamation rule**: a retired node version lives on an epoch page
//! owned only by the snapshot spines that reference it, so its memory is
//! freed exactly when the last snapshot taken before the version was
//! replaced is dropped.  The registry pin is released by the snapshot's
//! `Drop`; no collector runs.
//!
//! **Incremental refresh** ([`TreeSnapshot::refresh`]): a long-lived reader
//! that wants to move its snapshot forward does not pay a fresh capture —
//! the spine is diffed against the live arena by pointer equality and only
//! the slot chunks and epoch pages touched since the pin are replaced; the
//! untouched majority is reused as-is.  The returned [`SnapshotRefresh`]
//! counters make the reuse observable.

use crate::arena::{ArenaSpine, EpochPin, EpochRegistry, SnapshotRefresh};
use crate::node::{Node, NodeId};
use crate::query::{BlockCacheRef, TreeView};
use crate::summary::Summary;
use crate::tree::AnytimeTree;
use std::sync::Arc;

/// A cheap, immutable, point-in-time view of an [`AnytimeTree`]
/// (crate::AnytimeTree), pinned to the epoch that was published when it was
/// taken.
///
/// Created by [`AnytimeTree::snapshot`](crate::AnytimeTree::snapshot);
/// queried through [`TreeView`] exactly like the live tree.
#[derive(Debug, Clone)]
pub struct TreeSnapshot<S: Summary, L> {
    spine: ArenaSpine<S, L>,
    root: NodeId,
    height: usize,
    dims: usize,
    pin: EpochPin,
}

impl<S: Summary, L> TreeSnapshot<S, L> {
    /// Captures a snapshot from the raw parts (called by
    /// [`AnytimeTree::snapshot`](crate::AnytimeTree::snapshot)).
    #[must_use]
    pub(crate) fn capture(
        spine: ArenaSpine<S, L>,
        root: NodeId,
        height: usize,
        dims: usize,
        epoch: u64,
        registry: Arc<EpochRegistry>,
    ) -> Self {
        Self {
            spine,
            root,
            height,
            dims,
            pin: EpochPin::new(registry, epoch),
        }
    }

    /// Moves this snapshot forward to `tree`'s current state **in place**,
    /// replacing only the slot chunks and epoch pages the tree has touched
    /// since this snapshot was taken (or last refreshed) and reusing the
    /// untouched rest by pointer equality.  The pin is repointed to the
    /// tree's current published epoch.
    ///
    /// Equivalent to dropping this snapshot and taking a fresh one, but the
    /// diff makes the cost proportional to the write delta instead of the
    /// spine size — and the returned [`SnapshotRefresh`] counters prove it.
    ///
    /// # Panics
    ///
    /// Panics if `tree` is not the tree this snapshot was taken from (the
    /// epoch registries differ).
    pub fn refresh(&mut self, tree: &AnytimeTree<S, L>) -> SnapshotRefresh {
        assert!(
            self.pin.same_registry(tree.arena().registry()),
            "snapshot refreshed against a different tree"
        );
        let report = tree.arena().refresh_spine(&mut self.spine);
        self.root = tree.root();
        self.height = tree.height();
        self.pin.repin(tree.epoch());
        crate::obs::record_snapshot_refresh(&report);
        report
    }

    /// Dimensionality of the indexed data.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The arena index of the root node at snapshot time.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Height of the tree at snapshot time.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The published epoch this snapshot pins.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.pin.epoch()
    }

    /// Read access to a node as of snapshot time.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node<S, L> {
        self.spine.node(id)
    }

    /// The version stamp of a node as of snapshot time (the epoch of the
    /// batch that last mutated it — always `<=` [`Self::epoch`] for
    /// reachable nodes of a snapshot taken between batches).
    #[must_use]
    pub fn node_version(&self, id: NodeId) -> u64 {
        self.spine.version(id)
    }

    /// Number of arena slots captured (including orphaned nodes).
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.spine.len()
    }
}

impl<S: Summary, L> TreeView<S, L> for TreeSnapshot<S, L> {
    fn dims(&self) -> usize {
        TreeSnapshot::dims(self)
    }

    fn root(&self) -> NodeId {
        TreeSnapshot::root(self)
    }

    fn node(&self, id: NodeId) -> &Node<S, L> {
        TreeSnapshot::node(self, id)
    }

    fn height(&self) -> usize {
        TreeSnapshot::height(self)
    }

    fn block_cache(&self, id: NodeId) -> Option<BlockCacheRef<'_>> {
        Some(BlockCacheRef {
            slot: self.spine.cache_slot(id),
            version: self.spine.version(id),
            // Snapshot pages are copy-on-write immutable: any later live
            // mutation retires the node onto a fresh page first, so a block
            // gathered here can never go stale at this stamp.
            cacheable: true,
        })
    }

    fn prefetch_node(&self, id: NodeId) {
        self.spine.prefetch(id);
    }
}

#[cfg(test)]
mod tests {
    use crate::model::InsertModel;
    use crate::query::{QueryModel, RefineOrder, TreeView};
    use crate::summary::Summary;
    use crate::tree::AnytimeTree;
    use bt_index::PageGeometry;

    #[derive(Debug, Clone, PartialEq)]
    struct Blob {
        weight: f64,
        sum: Vec<f64>,
    }

    impl Blob {
        fn center_of(&self) -> Vec<f64> {
            self.sum.iter().map(|s| s / self.weight).collect()
        }
    }

    impl Summary for Blob {
        type Ctx = ();
        fn merge(&mut self, other: &Self, _ctx: ()) {
            self.weight += other.weight;
            for (a, b) in self.sum.iter_mut().zip(&other.sum) {
                *a += b;
            }
        }
        fn weight(&self) -> f64 {
            self.weight
        }
        fn sq_dist_to(&self, point: &[f64]) -> f64 {
            self.center_of()
                .iter()
                .zip(point)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        }
        fn center(&self) -> Vec<f64> {
            self.center_of()
        }
    }

    struct BlobModel;

    impl InsertModel<Blob> for BlobModel {
        type Object = Blob;
        type LeafItem = Blob;
        const BUFFERED: bool = true;

        fn ctx(&self) {}
        fn route_point<'a>(&self, obj: &'a Blob, scratch: &'a mut Vec<f64>) -> &'a [f64] {
            scratch.clear();
            scratch.extend(obj.center_of());
            scratch
        }
        fn summary_of(&self, obj: &Blob) -> Blob {
            obj.clone()
        }
        fn absorb_into(&self, summary: &mut Blob, obj: &Blob) {
            summary.merge(obj, ());
        }
        fn merge_buffer_into_object(&self, obj: &mut Blob, buffer: Blob) {
            obj.merge(&buffer, ());
        }
        fn insert_into_leaf(&mut self, items: &mut Vec<Blob>, obj: Blob) {
            items.push(obj);
        }
        fn summarize_leaf_items(&self, items: &[Blob]) -> Blob {
            let mut s = items[0].clone();
            for i in &items[1..] {
                s.merge(i, ());
            }
            s
        }
        fn split_leaf_items(
            &self,
            items: Vec<Blob>,
            geometry: &PageGeometry,
        ) -> (Vec<Blob>, Vec<Blob>) {
            let centers: Vec<Vec<f64>> = items.iter().map(Summary::center).collect();
            let (a, b) = crate::split::polar_partition(&centers, geometry.max_leaf);
            crate::split::distribute(items, &a, &b)
        }
    }

    struct BlobQueryModel;

    impl QueryModel<Blob> for BlobQueryModel {
        type LeafItem = Blob;
        fn summary_contribution(&self, query: &[f64], summary: &Blob) -> f64 {
            summary.weight * (-summary.sq_dist_to(query)).exp()
        }
        fn summary_bounds(&self, _query: &[f64], summary: &Blob) -> (f64, f64) {
            (0.0, summary.weight)
        }
        fn leaf_contribution(&self, query: &[f64], item: &Blob) -> f64 {
            self.summary_contribution(query, item)
        }
        fn leaf_sq_dist(&self, query: &[f64], item: &Blob) -> f64 {
            item.sq_dist_to(query)
        }
        fn leaf_weight(&self, item: &Blob) -> f64 {
            item.weight
        }
        fn summarize_leaf_items(&self, items: &[Blob]) -> Blob {
            let mut s = items[0].clone();
            for i in &items[1..] {
                s.merge(i, ());
            }
            s
        }
    }

    fn blob(x: f64, y: f64) -> Blob {
        Blob {
            weight: 1.0,
            sum: vec![x, y],
        }
    }

    fn geometry() -> PageGeometry {
        PageGeometry {
            min_fanout: 1,
            max_fanout: 3,
            min_leaf: 1,
            max_leaf: 3,
        }
    }

    fn stream(n: usize) -> Vec<Blob> {
        (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 20.0 };
                blob(c + (i % 5) as f64 * 0.1, c + (i % 7) as f64 * 0.1)
            })
            .collect()
    }

    #[test]
    fn snapshot_pins_the_published_epoch_and_tracks_nothing_new() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        let _ = tree.insert_batch(&mut model, stream(60), usize::MAX);
        assert_eq!(tree.epoch(), 1);
        let snapshot = tree.snapshot();
        assert_eq!(snapshot.epoch(), 1);
        assert_eq!(tree.pinned_snapshots(), 1);
        assert_eq!(tree.oldest_pinned_epoch(), Some(1));
        let height_before = snapshot.height();
        let nodes_before = TreeView::num_nodes(&snapshot);

        // Keep inserting: the tree moves on, the snapshot does not.
        for _ in 0..5 {
            let _ = tree.insert_batch(&mut model, stream(60), usize::MAX);
        }
        assert!(tree.epoch() > 1);
        assert_eq!(snapshot.epoch(), 1);
        assert_eq!(snapshot.height(), height_before);
        assert_eq!(TreeView::num_nodes(&snapshot), nodes_before);
        assert!(tree.num_nodes() > nodes_before);

        drop(snapshot);
        assert_eq!(tree.pinned_snapshots(), 0);
        assert_eq!(tree.oldest_pinned_epoch(), None);
    }

    #[test]
    fn writes_without_snapshots_never_copy() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        for chunk in stream(240).chunks(16) {
            let _ = tree.insert_batch(&mut model, chunk.to_vec(), usize::MAX);
        }
        assert_eq!(tree.retired_nodes(), 0, "no-reader fast path must not COW");
    }

    #[test]
    fn pinned_snapshot_answers_stay_bit_identical_under_writes() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        let _ = tree.insert_batch(&mut model, stream(150), 3);
        let pre_batch = tree.clone();
        let snapshot = tree.snapshot();

        // Mutate heavily while the snapshot is pinned.
        for chunk in stream(300).chunks(32) {
            let _ = tree.insert_batch(&mut model, chunk.to_vec(), usize::MAX);
        }
        assert!(tree.retired_nodes() > 0, "pinned snapshot must force COW");

        for (i, query) in [[0.3, 0.1], [20.0, 20.2], [10.0, 10.0]].iter().enumerate() {
            for order in [
                RefineOrder::BreadthFirst,
                RefineOrder::BestFirst,
                RefineOrder::WidestBound,
            ] {
                for budget in [0usize, 1, 5, usize::MAX] {
                    let expected =
                        pre_batch.query_with_budget(&BlobQueryModel, query, order, budget);
                    let got = snapshot.query_with_budget(&BlobQueryModel, query, order, budget);
                    assert_eq!(got, expected, "query {i}, {order:?}, budget {budget}");
                }
            }
        }
        // The live tree has genuinely moved past the snapshot.
        let live = tree.query_with_budget(&BlobQueryModel, &[0.3, 0.1], RefineOrder::BestFirst, 0);
        let frozen =
            snapshot.query_with_budget(&BlobQueryModel, &[0.3, 0.1], RefineOrder::BestFirst, 0);
        assert!((live.estimate - frozen.estimate).abs() > 1e-12);
    }

    #[test]
    fn dropping_the_snapshot_restores_the_in_place_fast_path() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        let _ = tree.insert_batch(&mut model, stream(100), usize::MAX);
        let snapshot = tree.snapshot();
        let _ = tree.insert_batch(&mut model, stream(50), usize::MAX);
        let copied_while_pinned = tree.retired_nodes();
        assert!(copied_while_pinned > 0);
        drop(snapshot);
        let _ = tree.insert_batch(&mut model, stream(50), usize::MAX);
        let _ = tree.insert_batch(&mut model, stream(50), usize::MAX);
        assert_eq!(
            tree.retired_nodes(),
            copied_while_pinned,
            "after the pin is gone, writes go in place again"
        );
    }

    #[test]
    fn snapshots_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::TreeSnapshot<Blob, Blob>>();
    }

    #[test]
    fn refresh_catches_up_and_reuses_untouched_storage() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        for chunk in stream(200).chunks(25) {
            let _ = tree.insert_batch(&mut model, chunk.to_vec(), usize::MAX);
        }
        let mut snapshot = tree.snapshot();
        let _ = tree.insert_batch(&mut model, stream(50), usize::MAX);

        let report = snapshot.refresh(&tree);
        assert_eq!(snapshot.epoch(), tree.epoch());
        assert_eq!(tree.pinned_snapshots(), 1, "refresh repins, not re-pins");
        assert_eq!(tree.oldest_pinned_epoch(), Some(tree.epoch()));
        // The refreshed snapshot answers exactly like the live tree.
        for query in [[0.3, 0.1], [20.0, 20.2], [10.0, 10.0]] {
            let live =
                tree.query_with_budget(&BlobQueryModel, &query, RefineOrder::BestFirst, usize::MAX);
            let fresh = snapshot.query_with_budget(
                &BlobQueryModel,
                &query,
                RefineOrder::BestFirst,
                usize::MAX,
            );
            assert_eq!(fresh, live);
        }
        // A refresh right after catching up reuses everything.
        let idle = snapshot.refresh(&tree);
        assert_eq!(idle.chunks_refreshed, 0);
        assert_eq!(idle.pages_refreshed, 0);
        assert!(idle.chunks_reused > 0 && idle.pages_reused > 0);
        // The first refresh reused at least as much as it replaced would
        // suggest: some storage was untouched by the 50-object batch.
        assert!(report.chunks_reused + report.chunks_refreshed >= 1);
    }

    #[test]
    #[should_panic(expected = "different tree")]
    fn refresh_against_a_foreign_tree_panics() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        let _ = tree.insert_batch(&mut model, stream(30), usize::MAX);
        let mut snapshot = tree.snapshot();
        let other: AnytimeTree<Blob, Blob> = AnytimeTree::new(2, geometry());
        let _ = snapshot.refresh(&other);
    }

    #[test]
    fn node_versions_never_exceed_the_snapshot_epoch() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        for chunk in stream(120).chunks(24) {
            let _ = tree.insert_batch(&mut model, chunk.to_vec(), usize::MAX);
        }
        let snapshot = tree.snapshot();
        for id in TreeView::reachable(&snapshot) {
            assert!(snapshot.node_version(id) <= snapshot.epoch());
        }
    }
}
