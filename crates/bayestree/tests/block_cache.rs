//! Cache-epoch interaction properties for the per-node block cache.
//!
//! The epoch-stamped block cache must be *invisible* in `f64` mode: warm
//! slots, cold slots and no slots at all produce bit-identical density
//! answers — across the live tree, epoch-pinned snapshots and the sharded
//! variant — and a node's stale block is never reused after a mutation
//! restamps it.

use bayestree::{BayesTree, BayesTreeQuantized, DescentStrategy, ShardedBayesTree};
use bt_anytree::{Node, NodeId, QueryAnswer, Summary, TreeView};
use bt_index::PageGeometry;

/// Delegating view whose `block_cache` stays at the default `None` — the
/// gather-every-time reference every cached answer must reproduce.
struct NoCache<'a, V>(&'a V);

impl<S: Summary, L, V: TreeView<S, L>> TreeView<S, L> for NoCache<'_, V> {
    fn dims(&self) -> usize {
        self.0.dims()
    }

    fn root(&self) -> NodeId {
        self.0.root()
    }

    fn node(&self, id: NodeId) -> &Node<S, L> {
        self.0.node(id)
    }

    fn height(&self) -> usize {
        self.0.height()
    }
}

const DIMS: usize = 3;
const BUDGET: usize = 16;

fn stream(n: usize, phase: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let i = i + phase;
            let c = (i % 4) as f64 * 3.0;
            (0..DIMS)
                .map(|d| c + ((i * 31 + d * 17) % 97) as f64 / 97.0)
                .collect()
        })
        .collect()
}

fn build_tree(points: &[Vec<f64>]) -> BayesTree {
    let mut tree: BayesTree = BayesTree::new(DIMS, PageGeometry::from_fanout(3, 5));
    for chunk in points.chunks(64) {
        tree.insert_batch(chunk.to_vec());
    }
    tree
}

fn queries() -> Vec<Vec<f64>> {
    stream(40, 7)
}

fn bits(answers: &[QueryAnswer]) -> Vec<(u64, u64, u64)> {
    answers
        .iter()
        .map(|a| (a.estimate.to_bits(), a.lower.to_bits(), a.upper.to_bits()))
        .collect()
}

/// The live tree's shared core is crate-private, but an epoch-pinned
/// snapshot of an idle tree answers bit-identically to the live tree and
/// exposes its core — so the cache-less reference runs over that.
fn reference_batch(
    tree: &BayesTree,
    queries: &[Vec<f64>],
) -> (Vec<QueryAnswer>, bt_anytree::QueryStats) {
    let snapshot = tree.snapshot();
    NoCache(snapshot.core()).query_batch(
        &snapshot.query_model(),
        queries,
        DescentStrategy::default().into(),
        BUDGET,
    )
}

#[test]
fn warm_cache_answers_match_the_gather_every_time_reference() {
    let tree = build_tree(&stream(300, 0));
    let queries = queries();

    // First pass populates the per-node slots, second pass consumes them.
    let (cold, cold_stats) = tree.density_batch(&queries, DescentStrategy::default(), BUDGET);
    assert!(cold_stats.block_gathers > 0, "block path is exercised");
    let (warm, warm_stats) = tree.density_batch(&queries, DescentStrategy::default(), BUDGET);
    assert!(
        warm_stats.gathers_avoided > 0,
        "second pass hits the warm slots"
    );
    assert_eq!(bits(&cold), bits(&warm), "hits change nothing");

    // The cache-less reference view scores the same tree the long way.
    let (reference, ref_stats) = reference_batch(&tree, &queries);
    assert_eq!(ref_stats.gathers_avoided, 0, "no slots, no hits");
    assert_eq!(bits(&reference), bits(&warm), "cache is invisible");
}

#[test]
fn mutation_restamps_the_slot_so_stale_blocks_are_never_reused() {
    let mut tree = build_tree(&stream(300, 0));
    let queries = queries();

    // Warm every slot the workload touches, then mutate the tree.
    let _ = tree.density_batch(&queries, DescentStrategy::default(), BUDGET);
    tree.insert_batch(stream(200, 1000));

    let (after, _) = tree.density_batch(&queries, DescentStrategy::default(), BUDGET);
    let (reference, _) = reference_batch(&tree, &queries);
    assert_eq!(
        bits(&reference),
        bits(&after),
        "post-mutation answers must come from fresh gathers, not stale blocks"
    );
}

#[test]
fn pinned_snapshot_scores_identically_while_the_live_cache_churns() {
    let mut tree = build_tree(&stream(300, 0));
    let queries = queries();
    let snapshot = tree.snapshot();

    let (frozen, _) = snapshot.density_batch(&queries, DescentStrategy::default(), BUDGET);

    // Later batches mutate the tree and live queries repopulate the slots
    // at newer epochs; the pinned pages keep their own blocks.
    for phase in 0..3 {
        tree.insert_batch(stream(100, 2000 + phase * 100));
        let _ = tree.density_batch(&queries, DescentStrategy::default(), BUDGET);
    }

    let (again, again_stats) = snapshot.density_batch(&queries, DescentStrategy::default(), BUDGET);
    assert!(
        again_stats.gathers_avoided > 0,
        "snapshot reuses its warm blocks"
    );
    assert_eq!(bits(&frozen), bits(&again), "snapshot answers are frozen");

    let (reference, _) = NoCache(snapshot.core()).query_batch(
        &snapshot.query_model(),
        &queries,
        DescentStrategy::default().into(),
        BUDGET,
    );
    assert_eq!(bits(&reference), bits(&frozen), "and still exact");
}

#[test]
fn quantized_decode_path_is_cache_invisible_and_matches_the_reference() {
    // The quantised mode decodes 16-bit summaries into f64 columns at
    // gather time, so a cached block memoises the *decode* as well as the
    // gather.  Warm, cold and cache-less passes must still agree bit for
    // bit — the cache may never observe a different decode.
    let points = stream(300, 0);
    let mut tree = BayesTreeQuantized::new(DIMS, PageGeometry::from_fanout(3, 5));
    for chunk in points.chunks(64) {
        tree.insert_batch(chunk.to_vec());
    }
    let queries = queries();

    let (cold, cold_stats) = tree.density_batch(&queries, DescentStrategy::default(), BUDGET);
    assert!(cold_stats.block_gathers > 0, "block path is exercised");
    let (warm, warm_stats) = tree.density_batch(&queries, DescentStrategy::default(), BUDGET);
    assert!(
        warm_stats.gathers_avoided > 0,
        "second pass hits the warm slots"
    );
    assert_eq!(bits(&cold), bits(&warm), "cached decodes change nothing");

    let snapshot = tree.snapshot();
    let (reference, ref_stats) = NoCache(snapshot.core()).query_batch(
        &snapshot.query_model(),
        &queries,
        DescentStrategy::default().into(),
        BUDGET,
    );
    assert_eq!(ref_stats.gathers_avoided, 0, "no slots, no hits");
    assert_eq!(bits(&reference), bits(&warm), "cache is invisible");
}

#[test]
fn sharded_warm_cache_is_bit_identical_to_the_cold_pass() {
    let points = stream(400, 0);
    let mut tree: ShardedBayesTree =
        ShardedBayesTree::new(DIMS, PageGeometry::from_fanout(3, 5), 3);
    for chunk in points.chunks(64) {
        let _ = tree.insert_batch(chunk.to_vec());
    }
    tree.fit_bandwidth();
    let queries = queries();

    let (cold, _) = tree.density_batch(&queries, DescentStrategy::default(), BUDGET);
    let (warm, warm_stats) = tree.density_batch(&queries, DescentStrategy::default(), BUDGET);
    assert!(
        warm_stats.gathers_avoided > 0,
        "shard frontiers hit their warm slots"
    );
    for (a, b) in cold.iter().zip(&warm) {
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
    }
}
