//! Space-filling-curve and partitioning bulk loads.
//!
//! These are the "traditional R-tree bulk loading algorithms" of Section 3.1:
//! order the kernels along a Hilbert or Z curve (or tile them with STR), cut
//! the ordering into leaf pages, and repeat the procedure on the node mean
//! vectors until a single root remains.

use crate::bulk::build_packed;
use crate::tree::BayesTree;
use bt_index::{hilbert_sort_order, str_partition, z_order_sort_order, PageGeometry};

/// Bits per dimension used when quantising points onto the space-filling
/// curves (capped automatically so keys fit into 128 bits).
const CURVE_BITS: u32 = 16;

/// Hilbert-curve bulk load.
#[must_use]
pub fn build_hilbert(points: &[Vec<f64>], dims: usize, geometry: PageGeometry) -> BayesTree {
    build_packed(points, dims, geometry, |pts, capacity| {
        chunk_order(&hilbert_sort_order(pts, CURVE_BITS), capacity)
    })
}

/// Z-order (Morton) bulk load.
#[must_use]
pub fn build_zorder(points: &[Vec<f64>], dims: usize, geometry: PageGeometry) -> BayesTree {
    build_packed(points, dims, geometry, |pts, capacity| {
        chunk_order(&z_order_sort_order(pts, CURVE_BITS), capacity)
    })
}

/// Sort-tile-recursive bulk load.
#[must_use]
pub fn build_str(points: &[Vec<f64>], dims: usize, geometry: PageGeometry) -> BayesTree {
    build_packed(points, dims, geometry, |pts, capacity| {
        str_partition(pts, capacity)
    })
}

/// Cuts an ordering of indices into consecutive groups of `capacity`.
fn chunk_order(order: &[usize], capacity: usize) -> Vec<Vec<usize>> {
    order
        .chunks(capacity.max(1))
        .map(<[usize]>::to_vec)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let cx = (i % 4) as f64 * 50.0;
                vec![cx + rng.random::<f64>(), cx + rng.random::<f64>()]
            })
            .collect()
    }

    #[test]
    fn hilbert_load_is_balanced_and_complete() {
        let pts = clustered_points(500, 1);
        let tree = build_hilbert(&pts, 2, PageGeometry::from_fanout(5, 10));
        assert_eq!(tree.len(), 500);
        tree.validate(true).expect("balanced and consistent");
        assert!(tree.height() >= 3);
    }

    #[test]
    fn zorder_load_is_balanced_and_complete() {
        let pts = clustered_points(300, 2);
        let tree = build_zorder(&pts, 2, PageGeometry::from_fanout(4, 8));
        assert_eq!(tree.len(), 300);
        tree.validate(true).expect("balanced and consistent");
    }

    #[test]
    fn str_load_is_balanced_and_complete() {
        let pts = clustered_points(400, 3);
        let tree = build_str(&pts, 2, PageGeometry::from_fanout(4, 8));
        assert_eq!(tree.len(), 400);
        tree.validate(true).expect("balanced and consistent");
    }

    #[test]
    fn packed_leaves_are_fuller_than_iterative_ones() {
        // Bulk loading exists to produce a compact tree; the packed tree
        // should not have more nodes than the iteratively built one.
        let pts = clustered_points(600, 4);
        let geometry = PageGeometry::from_fanout(5, 10);
        let packed = build_hilbert(&pts, 2, geometry);
        let iterative: BayesTree = BayesTree::build_iterative(&pts, 2, geometry);
        assert!(packed.num_nodes() <= iterative.num_nodes());
    }

    #[test]
    fn chunk_order_covers_every_index_once() {
        let order = vec![4, 2, 0, 1, 3];
        let chunks = chunk_order(&order, 2);
        assert_eq!(chunks, vec![vec![4, 2], vec![0, 1], vec![3]]);
    }

    #[test]
    fn small_input_becomes_single_leaf_root() {
        let pts = clustered_points(5, 5);
        let tree = build_hilbert(&pts, 2, PageGeometry::from_fanout(4, 10));
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.len(), 5);
    }
}
