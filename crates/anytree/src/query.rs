//! The generic anytime query engine: resumable best-first frontiers.
//!
//! The paper's anytime promise covers *answers*, not just inserts: a query's
//! mixture estimate must improve monotonically as the budget grows and be
//! interruptible at any node read.  This module is the query-side mirror of
//! the insertion engine in [`crate::descent`] — payload-generic, iterative,
//! resumable, and built around one reusable piece of per-query scratch:
//!
//! * a [`QueryModel`] supplies the handful of decisions that differ per
//!   workload (how a directory summary is scored against the query, what
//!   certain lower/upper bounds on its fully refined contribution are, how a
//!   leaf item is scored),
//! * a [`QueryCursor`] holds the complete state of one in-flight query: the
//!   *frontier* — a set of elements such that every leaf item of the tree is
//!   represented exactly once — plus the running partial answer and its
//!   certain bounds.  [`TreeView::refine_query`] advances it by exactly
//!   one node read, replacing one frontier element by its children and
//!   updating the partial answer by subtracting the refined contribution and
//!   adding the children's — the cost per step is one node read, and the
//!   cursor can stop and resume anywhere,
//! * a [`RefineOrder`] decides which element refines next (the orderings the
//!   Bayes tree's Section 2.2 evaluates, hoisted here so they exist once:
//!   breadth-first, depth-first, closest-first, best-contribution-first,
//!   plus the bound-driven widest-bound-first used by outlier scoring),
//! * [`QueryStats`] counts the engine's work (queries begun, node reads,
//!   elements scored) alongside the insertion path's
//!   [`DescentStats`](crate::DescentStats),
//! * [`TreeView::query_batch`] refines many queries through **one reused
//!   cursor** — the frontier allocation is per-tree scratch, not per-query.
//!
//! ## The monotonicity contract
//!
//! Every frontier element carries certain bounds `lower <= c <= upper` on
//! its fully refined contribution `c`.  [`QueryModel::summary_bounds`] must
//! guarantee **nesting**: the bounds of an entry's children (plus its split
//! -out hitchhiker buffer, if any) sum to an interval contained in the
//! entry's own.  Under that contract the cursor's global interval
//! [`QueryCursor::bounds`] can only tighten with every refinement — more
//! budget never worsens the bound — which is what makes the interval an
//! *anytime answer*: interrupt whenever, the reported uncertainty is honest
//! and non-increasing in budget.  Leaf items are exact (`lower == upper`),
//! so a fully refined cursor has zero uncertainty (up to unrefinable
//! buffered mass, whose interval is frozen).
//!
//! Insert-free workloads plug in here without touching the insertion path:
//! anytime **outlier scoring** ([`TreeView::outlier_score`]) needs only a
//! `Summary` + `QueryModel` — the score *is* the refinable density interval,
//! and the verdict against a threshold becomes certain as soon as the
//! interval clears it.

use crate::node::{Entry, Node, NodeId, NodeKind};
use crate::summary::Summary;
use crate::tree::AnytimeTree;
use bt_stats::{BlockCacheSlot, BlockPrecision, BlockScratch, CachedBlock, GatheredBlock};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The complete score of one directory summary against a query point — what
/// the frontier needs to admit the summary as an element.
///
/// Produced per node by [`QueryModel::score_entries`]; the default
/// implementation fills it from the per-summary model methods, block-scoring
/// models fill it column-wise for all entries of a node at once.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SummaryScore {
    /// The summary's (possibly decayed) weight.
    pub weight: f64,
    /// Point estimate of the summary's contribution.
    pub contribution: f64,
    /// Certain lower bound on the fully refined contribution.
    pub lower: f64,
    /// Certain upper bound on the fully refined contribution.
    pub upper: f64,
    /// Geometric priority (squared distance from query to region).
    pub min_dist_sq: f64,
}

/// The query-side policy: how summaries and leaf items are scored against a
/// query point.
///
/// The shared engine owns frontier bookkeeping, refinement ordering and the
/// partial-answer fold; the model supplies what genuinely differs between
/// workloads.  Implementations must be cheap to construct (one is typically
/// built per query or per shard) and must use the *same global normaliser*
/// across the shards of a sharded tree so that per-shard partial answers fold
/// by plain summation.
pub trait QueryModel<S: Summary> {
    /// What the tree's leaves store.
    type LeafItem;

    /// Point estimate of the contribution a directory summary makes to the
    /// query answer (e.g. `weight/n * gaussian(summary).pdf(query)`).
    fn summary_contribution(&self, query: &[f64], summary: &S) -> f64;

    /// Certain bounds `(lower, upper)` on the summary's *fully refined*
    /// contribution.  Contract: the bounds of the summary's children (plus
    /// its split-out buffer) must sum to an interval nested inside this one
    /// — that nesting is what makes refinement monotone.
    fn summary_bounds(&self, query: &[f64], summary: &S) -> (f64, f64);

    /// Geometric priority of a summary: squared distance from the query to
    /// the summary's region (used by [`RefineOrder::ClosestFirst`]).
    fn summary_sq_dist(&self, query: &[f64], summary: &S) -> f64 {
        summary.sq_dist_to(query)
    }

    /// Exact contribution of one leaf item (its bounds collapse to a point).
    fn leaf_contribution(&self, query: &[f64], item: &Self::LeafItem) -> f64;

    /// Geometric priority of a leaf item.
    fn leaf_sq_dist(&self, query: &[f64], item: &Self::LeafItem) -> f64;

    /// Weight of one leaf item (`1.0` for raw points).
    fn leaf_weight(&self, _item: &Self::LeafItem) -> f64 {
        1.0
    }

    /// The summary describing a whole (non-empty) leaf node — used to seed
    /// the frontier when the root itself is a leaf.
    fn summarize_leaf_items(&self, items: &[Self::LeafItem]) -> S;

    /// The column precision this model gathers blocks at.  Cached blocks
    /// are only reused by a model gathering at the same precision.
    fn block_precision(&self) -> BlockPrecision {
        BlockPrecision::F64
    }

    /// The column precision this model gathers **leaf item** blocks at —
    /// the precision the leaf cache lookups key on.  Defaults to
    /// [`block_precision`](QueryModel::block_precision); models whose leaf
    /// items are exact full-width observations (rather than stored
    /// summaries) gather leaves at `F64` regardless of the directory
    /// precision and must say so here, or every leaf lookup misses.
    fn leaf_block_precision(&self) -> BlockPrecision {
        self.block_precision()
    }

    /// Gathers one directory node's entries into `out`'s columns and returns
    /// `true`; a model with no block representation returns `false` (the
    /// default) and is scored through the per-summary scalar loop.
    ///
    /// The gather must be a pure function of `entries`: the engine caches
    /// the result per node (keyed by the node's version stamp) and replays
    /// it through [`QueryModel::score_gathered`] on later visits.
    fn gather_entries(&self, entries: &[Entry<S>], out: &mut GatheredBlock) -> bool {
        let _ = (entries, out);
        false
    }

    /// Scores one directory node from its gathered columns, filling `out`
    /// with one [`SummaryScore`] per entry (in entry order; `out` is cleared
    /// first).  `entries` is the same slice the gather saw, for per-entry
    /// fallbacks the columns cannot express.
    ///
    /// Must produce exactly the scores [`QueryModel::score_entries`] would:
    /// the gather/score split exists so the gather can be cached, not so the
    /// arithmetic can change.
    fn score_gathered(
        &self,
        query: &[f64],
        entries: &[Entry<S>],
        gathered: &GatheredBlock,
        lanes: &mut [Vec<f64>; 4],
        out: &mut Vec<SummaryScore>,
    ) {
        let _ = (query, entries, gathered, lanes);
        out.clear();
    }

    /// Scores every entry of one directory node against `query` in a single
    /// call, filling `out` with one [`SummaryScore`] per entry (in entry
    /// order; `out` is cleared first).
    ///
    /// The default composes [`QueryModel::gather_entries`] +
    /// [`QueryModel::score_gathered`] when the model gathers, and otherwise
    /// delegates to the per-summary methods — which stay the behavioural
    /// reference: a block path may only change *how* the scores are computed
    /// (structure-of-arrays batch kernels of `bt_stats::kernel`), never
    /// their values beyond the model's documented precision mode.
    fn score_entries(
        &self,
        query: &[f64],
        entries: &[Entry<S>],
        scratch: &mut BlockScratch,
        out: &mut Vec<SummaryScore>,
    ) {
        let BlockScratch { gathered, lanes } = scratch;
        if self.gather_entries(entries, gathered) {
            self.score_gathered(query, entries, gathered, lanes, out);
            return;
        }
        out.clear();
        out.reserve(entries.len());
        for entry in entries {
            let summary = &entry.summary;
            let contribution = self.summary_contribution(query, summary);
            let (lower, upper) = self.summary_bounds(query, summary);
            let min_dist_sq = self.summary_sq_dist(query, summary);
            out.push(SummaryScore {
                weight: summary.weight(),
                contribution,
                lower,
                upper,
                min_dist_sq,
            });
        }
    }

    /// Gathers one leaf node's items into `out`'s columns and returns
    /// `true`; a model with no leaf block representation returns `false`
    /// (the default) and leaves are scored item by item.  Cached per node
    /// like [`QueryModel::gather_entries`].
    fn gather_leaf_items(&self, items: &[Self::LeafItem], out: &mut GatheredBlock) -> bool {
        let _ = (items, out);
        false
    }

    /// Scores one leaf node from its gathered columns — the leaf
    /// counterpart of [`QueryModel::score_gathered`].  Leaf items are exact,
    /// so each score's bounds must collapse (`lower == upper ==
    /// contribution`).
    fn score_gathered_leaves(
        &self,
        query: &[f64],
        items: &[Self::LeafItem],
        gathered: &GatheredBlock,
        lanes: &mut [Vec<f64>; 4],
        out: &mut Vec<SummaryScore>,
    ) {
        let _ = (query, items, gathered, lanes);
        out.clear();
    }

    /// Scores every item of one leaf node against `query` in a single call,
    /// filling `out` with one [`SummaryScore`] per item (in item order;
    /// `out` is cleared first).
    ///
    /// The default composes [`QueryModel::gather_leaf_items`] +
    /// [`QueryModel::score_gathered_leaves`] when the model gathers leaves,
    /// and otherwise runs the per-item scalar loop — the behavioural
    /// reference a leaf block path must reproduce.
    fn score_leaf_items(
        &self,
        query: &[f64],
        items: &[Self::LeafItem],
        scratch: &mut BlockScratch,
        out: &mut Vec<SummaryScore>,
    ) {
        let BlockScratch { gathered, lanes } = scratch;
        if self.gather_leaf_items(items, gathered) {
            self.score_gathered_leaves(query, items, gathered, lanes, out);
            return;
        }
        out.clear();
        out.reserve(items.len());
        for item in items {
            let contribution = self.leaf_contribution(query, item);
            out.push(SummaryScore {
                weight: self.leaf_weight(item),
                contribution,
                lower: contribution,
                upper: contribution,
                min_dist_sq: self.leaf_sq_dist(query, item),
            });
        }
    }
}

/// Which frontier element to refine next.
///
/// These are the orderings the paper's Section 2.2 evaluates on the query
/// side (hoisted out of the Bayes tree so they exist exactly once), plus the
/// bound-driven order used by outlier scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RefineOrder {
    /// Refine elements level by level in arrival order (`bft`).
    BreadthFirst,
    /// Refine the most recently produced refinable element first (`dft`).
    DepthFirst,
    /// Refine the element geometrically closest to the query (`glo-geo`).
    ClosestFirst,
    /// Refine the element with the largest contribution (`glo`, the paper's
    /// best-performing probabilistic measure).
    #[default]
    BestFirst,
    /// Refine the element with the widest `[lower, upper]` bound interval —
    /// the greedy choice for shrinking the answer's uncertainty, used by
    /// anytime outlier scoring.
    WidestBound,
}

/// Where a frontier element came from, so instantiations can map elements
/// back to tree payloads (e.g. k-NN retrieval returning the micro-clusters
/// behind the closest elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementOrigin {
    /// The element is entry `index` of directory node `node`.
    Entry {
        /// Directory node holding the entry.
        node: NodeId,
        /// Index of the entry within the node.
        index: usize,
    },
    /// The element is the hitchhiker buffer of entry `index` of node `node`,
    /// split out when that entry was refined (unrefinable: the buffered
    /// objects have not descended yet).
    Buffer {
        /// Directory node holding the entry.
        node: NodeId,
        /// Index of the entry within the node.
        index: usize,
    },
    /// The element is leaf item `index` of leaf node `node`.
    LeafItem {
        /// The leaf node.
        node: NodeId,
        /// Index of the item within the leaf.
        index: usize,
    },
    /// The synthetic element summarising a root that is itself a leaf.
    RootLeaf,
}

/// One element of a query frontier.
///
/// A frontier represents every leaf item of the tree exactly once; each
/// element contributes a point estimate and a certain `[lower, upper]`
/// interval to the cursor's partial answer.
#[derive(Debug, Clone)]
pub struct QueryElement {
    /// Where the element came from (entry / buffer / leaf item).
    pub origin: ElementOrigin,
    /// Child node this element refines into (`None` for exact leaf items
    /// and unrefinable buffers).
    pub child: Option<NodeId>,
    /// Number of objects represented by this element.
    pub weight: f64,
    /// Point estimate of this element's contribution to the answer.
    pub contribution: f64,
    /// Certain lower bound on the fully refined contribution.
    pub lower: f64,
    /// Certain upper bound on the fully refined contribution.
    pub upper: f64,
    /// Geometric priority: squared distance from the query to the element.
    pub min_dist_sq: f64,
    /// Depth of the element in the tree (root entries have depth 1).
    pub depth: usize,
    /// Monotone sequence number recording when the element joined the
    /// frontier (FIFO/LIFO tie-breaking).
    pub seq: u64,
}

impl QueryElement {
    /// Whether the element can still be refined.
    #[must_use]
    pub fn is_refinable(&self) -> bool {
        self.child.is_some()
    }
}

/// The query engine's work counters: one struct shared by the single-tree
/// and sharded query paths, merged with [`QueryStats::merge`] — the
/// query-side sibling of [`DescentStats`](crate::DescentStats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries begun on a cursor.
    pub queries: u64,
    /// Refinement steps performed (one node read each).
    pub nodes_read: u64,
    /// Frontier elements scored against a query (entries, buffers and leaf
    /// items pushed onto a frontier).
    pub elements_scored: u64,
    /// Nodes whose columns were gathered into a block (a cache miss on the
    /// block path, or a model without a cache slot in reach).
    pub block_gathers: u64,
    /// Nodes scored straight from an epoch-valid cached block — gathers the
    /// cache made unnecessary.
    pub gathers_avoided: u64,
    /// Software prefetches issued for the upcoming frontier candidate's
    /// epoch-page slot (see [`TreeView::prefetch_node`]).
    pub prefetches: u64,
}

impl QueryStats {
    /// Folds another stats record into this one (used to aggregate per-shard
    /// and per-batch counters into one report).
    pub fn merge(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.nodes_read += other.nodes_read;
        self.elements_scored += other.elements_scored;
        self.block_gathers += other.block_gathers;
        self.gathers_avoided += other.gathers_avoided;
        self.prefetches += other.prefetches;
    }

    /// The work performed since `earlier` was captured (element-wise
    /// saturating difference).
    #[must_use]
    pub fn delta_since(&self, earlier: &QueryStats) -> QueryStats {
        QueryStats {
            queries: self.queries.saturating_sub(earlier.queries),
            nodes_read: self.nodes_read.saturating_sub(earlier.nodes_read),
            elements_scored: self.elements_scored.saturating_sub(earlier.elements_scored),
            block_gathers: self.block_gathers.saturating_sub(earlier.block_gathers),
            gathers_avoided: self.gathers_avoided.saturating_sub(earlier.gathers_avoided),
            prefetches: self.prefetches.saturating_sub(earlier.prefetches),
        }
    }

    /// Fraction of block-scored node visits served from the cache
    /// (`0.0` when no block scoring happened at all).
    #[must_use]
    pub fn gather_hit_rate(&self) -> f64 {
        let total = self.block_gathers + self.gathers_avoided;
        if total == 0 {
            0.0
        } else {
            self.gathers_avoided as f64 / total as f64
        }
    }
}

impl std::fmt::Display for QueryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "queries={} reads={} scored={} gathers={} cached={} prefetch={}",
            self.queries,
            self.nodes_read,
            self.elements_scored,
            self.block_gathers,
            self.gathers_avoided,
            self.prefetches
        )
    }
}

/// Borrowed handle to one node's block-cache slot, as resolved by a
/// [`TreeView`]: the slot itself, the version stamp the view observes the
/// node at, and whether fresh gathers may be stored back at that stamp.
///
/// A cached block is the model-gathered structure-of-arrays image of a
/// node ([`GatheredBlock`]) stamped with the node's mutation version; the
/// stale stamp *is* the invalidation — no flags, no generation counters.
#[derive(Debug, Clone, Copy)]
pub struct BlockCacheRef<'a> {
    /// The node's cache slot (lives page-side next to the node's version).
    pub slot: &'a BlockCacheSlot,
    /// The node's version stamp as seen through this view; a cached block
    /// is reused only while its stamp equals this.
    pub version: u64,
    /// Whether a freshly gathered block may be stored at `version`.  Live
    /// trees refuse to cache nodes stamped past the published epoch — an
    /// in-flight batch may still mutate them *at the same stamp* — while
    /// snapshot pages are copy-on-write immutable and always cache.
    pub cacheable: bool,
}

/// The answer of one (possibly interrupted) query: the current mixture
/// estimate with its certain bounds and the budget actually spent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryAnswer {
    /// Point estimate of the answer under the current frontier.
    pub estimate: f64,
    /// Certain lower bound on the fully refined answer.
    pub lower: f64,
    /// Certain upper bound on the fully refined answer.
    pub upper: f64,
    /// Refinement steps (node reads) this answer cost.
    pub nodes_read: usize,
}

impl QueryAnswer {
    /// Width of the certain bound interval — the answer's honest remaining
    /// uncertainty, non-increasing in budget.
    #[must_use]
    pub fn uncertainty(&self) -> f64 {
        (self.upper - self.lower).max(0.0)
    }

    /// Classifies the answer against a density `threshold`: certain verdicts
    /// as soon as the bound interval clears the threshold.
    #[must_use]
    pub fn verdict(&self, threshold: f64) -> OutlierVerdict {
        if self.upper < threshold {
            OutlierVerdict::Outlier
        } else if self.lower > threshold {
            OutlierVerdict::Inlier
        } else {
            OutlierVerdict::Undecided
        }
    }
}

/// The (possibly still uncertain) outcome of an anytime outlier test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutlierVerdict {
    /// The density is certainly below the threshold: an outlier.
    Outlier,
    /// The density is certainly above the threshold: an inlier.
    Inlier,
    /// The bound interval still straddles the threshold.
    Undecided,
}

/// The result of one anytime outlier test: the refinable density interval
/// plus the verdict it supports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierScore {
    /// The density estimate with its certain bounds.
    pub answer: QueryAnswer,
    /// The verdict the bounds support at the tested threshold.
    pub verdict: OutlierVerdict,
}

/// A Neumaier-compensated accumulator: every refinement subtracts a parent
/// contribution and adds its children's, and a single degenerate summary
/// (near-zero variance, astronomically peaked density) passing through a
/// plain `f64` sum would permanently shave low-order bits off the answer.
/// The compensation term keeps the running sums as accurate as re-summing
/// the frontier from scratch, at O(1) per update.
#[derive(Debug, Clone, Copy, Default)]
struct Accumulator {
    sum: f64,
    compensation: f64,
}

impl Accumulator {
    fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    fn sub(&mut self, value: f64) {
        self.add(-value);
    }

    fn value(&self) -> f64 {
        self.sum + self.compensation
    }

    fn reset(&mut self) {
        self.sum = 0.0;
        self.compensation = 0.0;
    }
}

/// One entry of the cursor's lazy selection heap: the normalised priority
/// of a frontier element under the heap's active [`RefineOrder`], plus the
/// element's stable sequence number.
///
/// Priorities are pre-normalised at push time (min-orders negate, `-0.0`
/// collapses onto `+0.0` by adding `0.0`) so that one max-heap comparison —
/// `total_cmp` on `prio`, then the tie stamp — reproduces the reference
/// scan's selection *exactly*, tie-breaks included.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    prio: f64,
    tie: u64,
    seq: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.prio
            .total_cmp(&other.prio)
            .then(self.tie.cmp(&other.tie))
    }
}

/// The complete state of one in-flight query: the frontier, the running
/// partial answer with its certain bounds, and the engine's work counters.
///
/// A cursor is plain per-query scratch — it borrows nothing, so one cursor
/// can be reused across many queries ([`QueryCursor::new`] once, then
/// [`TreeView::begin_query`] per query re-fills the same allocations) and
/// moved freely across threads by the sharded query path.
///
/// Selection runs on a **per-order lazy heap**: the heap is built for the
/// first order a refinement asks for, updated incrementally as elements
/// join the frontier, rebuilt only if the order changes mid-query, and
/// cleaned lazily (refined elements are discarded when they surface at the
/// top).  [`QueryCursor::peek_next_scan`] keeps the historical linear scan
/// as the executable specification — the heap is property-tested to pop the
/// identical element sequence for every order.
#[derive(Debug, Clone, Default)]
pub struct QueryCursor {
    query: Vec<f64>,
    elements: Vec<QueryElement>,
    estimate: Accumulator,
    lower: Accumulator,
    upper: Accumulator,
    nodes_read: usize,
    next_seq: u64,
    stats: QueryStats,
    /// Lazy selection heap for `heap_order` (empty until a refinement runs).
    heap: BinaryHeap<HeapEntry>,
    /// The order the heap is currently keyed by.
    heap_order: Option<RefineOrder>,
    /// Maps an element's `seq` to its current index in `elements`
    /// (`usize::MAX` once refined away) — heap entries stay valid across
    /// the frontier's `swap_remove`s.
    seq_index: Vec<usize>,
    /// Structure-of-arrays scratch reused by block-scoring models.
    block: BlockScratch,
    /// Per-node score outputs of [`QueryModel::score_entries`].
    scores: Vec<SummaryScore>,
}

impl QueryCursor {
    /// Creates an empty cursor (no frontier until a query begins).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The query point the cursor currently refines for.
    #[must_use]
    pub fn query(&self) -> &[f64] {
        &self.query
    }

    /// The current point estimate of the answer.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.estimate.value()
    }

    /// The certain `(lower, upper)` bounds on the fully refined answer.
    #[must_use]
    pub fn bounds(&self) -> (f64, f64) {
        (self.lower.value(), self.upper.value())
    }

    /// Width of the certain bound interval (non-increasing in budget).
    #[must_use]
    pub fn uncertainty(&self) -> f64 {
        (self.upper.value() - self.lower.value()).max(0.0)
    }

    /// Number of refinement steps (node reads) spent on the current query.
    #[must_use]
    pub fn nodes_read(&self) -> usize {
        self.nodes_read
    }

    /// The current frontier elements.
    #[must_use]
    pub fn elements(&self) -> &[QueryElement] {
        &self.elements
    }

    /// Whether at least one element can still be refined.
    #[must_use]
    pub fn can_refine(&self) -> bool {
        self.elements.iter().any(QueryElement::is_refinable)
    }

    /// Total weight of the frontier (equals the number of stored objects —
    /// every leaf item is represented exactly once).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.elements.iter().map(|e| e.weight).sum()
    }

    /// The engine's work counters, accumulated across every query this
    /// cursor served.
    #[must_use]
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// The current answer as a standalone value.
    #[must_use]
    pub fn answer(&self) -> QueryAnswer {
        QueryAnswer {
            estimate: self.estimate.value(),
            lower: self.lower.value(),
            upper: self.upper.value(),
            nodes_read: self.nodes_read,
        }
    }

    /// Index of the element `order` would refine next, if any — the
    /// heap-backed selection the engine itself uses ([`Self::peek_next_scan`]
    /// is the read-only reference scan).
    #[must_use]
    pub fn peek_next(&mut self, order: RefineOrder) -> Option<usize> {
        self.select(order)
    }

    /// Index of the element `order` would refine next, by the reference
    /// linear scan over the frontier.
    ///
    /// This is the executable specification of the orderings (tie-breaking
    /// included: FIFO for the minimising orders, earliest-joined-wins for
    /// the maximising ones), deliberately matching the historical Bayes-tree
    /// frontier step for step.  The engine's hot path is the per-order lazy
    /// heap ([`Self::peek_next`]); `tests/query_equivalence.rs` locks the
    /// two onto the same selection sequence for every order.
    #[must_use]
    pub fn peek_next_scan(&self, order: RefineOrder) -> Option<usize> {
        self.select_scan(order)
    }

    fn reset(&mut self, query: &[f64]) {
        self.query.clear();
        self.query.extend_from_slice(query);
        self.elements.clear();
        self.estimate.reset();
        self.lower.reset();
        self.upper.reset();
        self.nodes_read = 0;
        self.next_seq = 0;
        self.stats.queries += 1;
        self.heap.clear();
        self.heap_order = None;
        self.seq_index.clear();
    }

    /// The heap entry of `element` under `order`, normalised so that one
    /// max-heap comparison reproduces the scan's selection exactly: min
    /// orders negate the key, `+ 0.0` collapses a negated zero onto `+0.0`
    /// (the scan's `partial_cmp` treats `-0.0 == 0.0`), and the tie stamp
    /// is the sequence number (or its complement) so equal keys resolve
    /// exactly like the scan's explicit seq tie-breaks.  Keys are assumed
    /// non-NaN — every certain bound and contribution the models produce is
    /// finite or infinite, never NaN.
    fn heap_entry(order: RefineOrder, element: &QueryElement) -> HeapEntry {
        let (prio, tie) = match order {
            RefineOrder::BreadthFirst => (-(element.depth as f64), !element.seq),
            RefineOrder::DepthFirst => (element.depth as f64, element.seq),
            RefineOrder::ClosestFirst => (-element.min_dist_sq + 0.0, !element.seq),
            RefineOrder::BestFirst => (element.contribution + 0.0, !element.seq),
            RefineOrder::WidestBound => ((element.upper - element.lower) + 0.0, !element.seq),
        };
        HeapEntry {
            prio,
            tie,
            seq: element.seq,
        }
    }

    /// Bookkeeping after a push: record the new element's position and feed
    /// the active heap (only refinable elements ever need selecting).
    fn after_push(&mut self) {
        let idx = self.elements.len() - 1;
        debug_assert_eq!(self.elements[idx].seq as usize, self.seq_index.len());
        self.seq_index.push(idx);
        if let Some(order) = self.heap_order {
            let element = &self.elements[idx];
            if element.is_refinable() {
                self.heap.push(Self::heap_entry(order, element));
            }
        }
    }

    /// Removes element `idx` from the frontier (subtracting its partial
    /// contribution) while keeping the seq→index map consistent across the
    /// `swap_remove`.  The heap is cleaned lazily: the removed element's
    /// entry is discarded when it next surfaces at the top.
    fn remove_element(&mut self, idx: usize) -> QueryElement {
        let element = self.elements.swap_remove(idx);
        self.seq_index[element.seq as usize] = usize::MAX;
        if let Some(moved) = self.elements.get(idx) {
            self.seq_index[moved.seq as usize] = idx;
        }
        self.estimate.sub(element.contribution);
        self.lower.sub(element.lower);
        self.upper.sub(element.upper);
        element
    }

    /// Heap-backed selection: (re)key the lazy heap if the order changed,
    /// then pop stale entries until a live refinable element surfaces.
    fn select(&mut self, order: RefineOrder) -> Option<usize> {
        if self.heap_order != Some(order) {
            self.heap.clear();
            self.heap_order = Some(order);
            for element in self.elements.iter().filter(|e| e.is_refinable()) {
                self.heap.push(Self::heap_entry(order, element));
            }
        }
        while let Some(top) = self.heap.peek() {
            let idx = self.seq_index[top.seq as usize];
            if idx != usize::MAX {
                debug_assert_eq!(self.elements[idx].seq, top.seq);
                debug_assert!(self.elements[idx].is_refinable());
                return Some(idx);
            }
            self.heap.pop();
        }
        None
    }

    /// The child node the next refinement in `order` would read, if any —
    /// the prefetch target of [`TreeView::refine_query`].  Peeking reuses
    /// (and warms) the selection heap, so it does not disturb the order and
    /// the following [`select`](Self::select) call finds its work done.
    pub fn next_refinable_child(&mut self, order: RefineOrder) -> Option<NodeId> {
        let idx = self.select(order)?;
        self.elements[idx].child
    }

    fn select_scan(&self, order: RefineOrder) -> Option<usize> {
        let refinable = self
            .elements
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_refinable());
        match order {
            RefineOrder::BreadthFirst => refinable
                .min_by(|(_, a), (_, b)| a.depth.cmp(&b.depth).then(a.seq.cmp(&b.seq)))
                .map(|(i, _)| i),
            RefineOrder::DepthFirst => refinable
                .max_by(|(_, a), (_, b)| a.depth.cmp(&b.depth).then(a.seq.cmp(&b.seq)))
                .map(|(i, _)| i),
            RefineOrder::ClosestFirst => refinable
                .min_by(|(_, a), (_, b)| {
                    a.min_dist_sq
                        .partial_cmp(&b.min_dist_sq)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.seq.cmp(&b.seq))
                })
                .map(|(i, _)| i),
            RefineOrder::BestFirst => refinable
                .max_by(|(_, a), (_, b)| {
                    a.contribution
                        .partial_cmp(&b.contribution)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.seq.cmp(&a.seq))
                })
                .map(|(i, _)| i),
            RefineOrder::WidestBound => refinable
                .max_by(|(_, a), (_, b)| {
                    (a.upper - a.lower)
                        .partial_cmp(&(b.upper - b.lower))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(b.seq.cmp(&a.seq))
                })
                .map(|(i, _)| i),
        }
    }

    fn push_summary<S, M>(
        &mut self,
        model: &M,
        child: Option<NodeId>,
        summary: &S,
        origin: ElementOrigin,
        depth: usize,
    ) where
        S: Summary,
        M: QueryModel<S>,
    {
        let contribution = model.summary_contribution(&self.query, summary);
        let (lower, upper) = model.summary_bounds(&self.query, summary);
        let min_dist_sq = model.summary_sq_dist(&self.query, summary);
        let score = SummaryScore {
            weight: summary.weight(),
            contribution,
            lower,
            upper,
            min_dist_sq,
        };
        self.push_scored(child, &score, origin, depth);
    }

    /// Admits one pre-scored summary to the frontier (the shared tail of
    /// [`Self::push_summary`] and the block scoring path).
    fn push_scored(
        &mut self,
        child: Option<NodeId>,
        score: &SummaryScore,
        origin: ElementOrigin,
        depth: usize,
    ) {
        let seq = self.bump_seq();
        self.elements.push(QueryElement {
            origin,
            child,
            weight: score.weight,
            contribution: score.contribution,
            lower: score.lower,
            upper: score.upper,
            min_dist_sq: score.min_dist_sq,
            depth,
            seq,
        });
        self.after_push();
        self.estimate.add(score.contribution);
        self.lower.add(score.lower);
        self.upper.add(score.upper);
        self.stats.elements_scored += 1;
    }

    /// Scores all entries of directory node `node` in one block-scoring
    /// call and admits them to the frontier — the entry point used by
    /// [`TreeView::begin_query`] and [`TreeView::refine_query`].  A cached
    /// block at the node's current stamp skips the gather entirely.
    fn push_entries<S, M>(
        &mut self,
        model: &M,
        node: NodeId,
        entries: &[Entry<S>],
        cache: Option<BlockCacheRef<'_>>,
        depth: usize,
    ) where
        S: Summary,
        M: QueryModel<S>,
    {
        self.score_node_entries(model, node, entries, cache);
        debug_assert_eq!(self.scores.len(), entries.len());
        let scores = std::mem::take(&mut self.scores);
        for (index, (entry, score)) in entries.iter().zip(&scores).enumerate() {
            self.push_scored(
                Some(entry.child),
                score,
                ElementOrigin::Entry { node, index },
                depth,
            );
        }
        self.scores = scores;
    }

    /// Fills `self.scores` with one score per entry: cached block if the
    /// node's slot holds one at the observed stamp, else gather (storing
    /// the result back when the view allows it), else the scalar loop.
    fn score_node_entries<S, M>(
        &mut self,
        model: &M,
        node: NodeId,
        entries: &[Entry<S>],
        cache: Option<BlockCacheRef<'_>>,
    ) where
        S: Summary,
        M: QueryModel<S>,
    {
        if let Some(cache) = cache {
            if let Some(hit) = cache
                .slot
                .lookup_scored(cache.version, model.block_precision())
            {
                self.stats.gathers_avoided += 1;
                bt_obs::trace(|| bt_obs::TraceEvent::Gather {
                    node: node as u64,
                    cached: true,
                });
                model.score_gathered(
                    &self.query,
                    entries,
                    &hit.gathered,
                    &mut self.block.lanes,
                    &mut self.scores,
                );
                return;
            }
        }
        let BlockScratch { gathered, lanes } = &mut self.block;
        if model.gather_entries(entries, gathered) {
            self.stats.block_gathers += 1;
            bt_obs::trace(|| bt_obs::TraceEvent::Gather {
                node: node as u64,
                cached: false,
            });
            model.score_gathered(&self.query, entries, gathered, lanes, &mut self.scores);
            if let Some(cache) = cache {
                if cache.cacheable {
                    cache.slot.store(Arc::new(CachedBlock {
                        version: cache.version,
                        scored: true,
                        gathered: std::mem::take(&mut self.block.gathered),
                    }));
                }
            }
            return;
        }
        model.score_entries(&self.query, entries, &mut self.block, &mut self.scores);
    }

    /// Scores all items of leaf node `node` in one block-scoring call and
    /// admits them to the frontier (unrefinable, collapsed bounds) — the
    /// leaf counterpart of [`Self::push_entries`].
    fn push_leaf_items<S, M>(
        &mut self,
        model: &M,
        node: NodeId,
        items: &[M::LeafItem],
        cache: Option<BlockCacheRef<'_>>,
        depth: usize,
    ) where
        S: Summary,
        M: QueryModel<S>,
    {
        self.score_node_leaves(model, node, items, cache);
        debug_assert_eq!(self.scores.len(), items.len());
        let scores = std::mem::take(&mut self.scores);
        for (index, score) in scores.iter().enumerate() {
            self.push_scored(None, score, ElementOrigin::LeafItem { node, index }, depth);
        }
        self.scores = scores;
    }

    /// Leaf twin of [`Self::score_node_entries`], over the model's leaf
    /// gather/score hooks.
    fn score_node_leaves<S, M>(
        &mut self,
        model: &M,
        node: NodeId,
        items: &[M::LeafItem],
        cache: Option<BlockCacheRef<'_>>,
    ) where
        S: Summary,
        M: QueryModel<S>,
    {
        if let Some(cache) = cache {
            if let Some(hit) = cache
                .slot
                .lookup_scored(cache.version, model.leaf_block_precision())
            {
                self.stats.gathers_avoided += 1;
                bt_obs::trace(|| bt_obs::TraceEvent::Gather {
                    node: node as u64,
                    cached: true,
                });
                model.score_gathered_leaves(
                    &self.query,
                    items,
                    &hit.gathered,
                    &mut self.block.lanes,
                    &mut self.scores,
                );
                return;
            }
        }
        let BlockScratch { gathered, lanes } = &mut self.block;
        if model.gather_leaf_items(items, gathered) {
            self.stats.block_gathers += 1;
            bt_obs::trace(|| bt_obs::TraceEvent::Gather {
                node: node as u64,
                cached: false,
            });
            model.score_gathered_leaves(&self.query, items, gathered, lanes, &mut self.scores);
            if let Some(cache) = cache {
                if cache.cacheable {
                    cache.slot.store(Arc::new(CachedBlock {
                        version: cache.version,
                        scored: true,
                        gathered: std::mem::take(&mut self.block.gathered),
                    }));
                }
            }
            return;
        }
        model.score_leaf_items(&self.query, items, &mut self.block, &mut self.scores);
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }
}

/// A read-only view of an anytime tree — the abstraction the query engine
/// runs on.
///
/// Two kinds of view exist: the **live tree** ([`AnytimeTree`] itself — a
/// zero-copy view of the current epoch, used when no batch is in flight)
/// and the **pinned snapshot** ([`crate::TreeSnapshot`] — an owned,
/// `Send + Sync`, point-in-time view that stays bit-stable while later
/// batches mutate the tree).  Every query-engine entry point
/// ([`TreeView::begin_query`], [`TreeView::refine_query`],
/// [`TreeView::query_batch`], [`TreeView::outlier_score`], …) is a provided
/// method of this trait, so both views answer queries through literally the
/// same code.
pub trait TreeView<S: Summary, L> {
    /// Dimensionality of the indexed data.
    fn dims(&self) -> usize;

    /// The arena index of the root node.
    fn root(&self) -> NodeId;

    /// Read access to a node.
    fn node(&self, id: NodeId) -> &Node<S, L>;

    /// Height of the tree (a single leaf root has height 1).
    fn height(&self) -> usize;

    /// The block-cache slot of node `id`, if this view exposes one — the
    /// slot plus the version stamp the view observes the node at, and
    /// whether fresh gathers may be stored back.  The default (`None`)
    /// disables caching: every block-scored visit gathers anew.
    fn block_cache(&self, id: NodeId) -> Option<BlockCacheRef<'_>> {
        let _ = id;
        None
    }

    /// Best-effort prefetch of node `id`'s backing memory — a pure hint the
    /// query engine uses to overlap the next frontier candidate's page load
    /// with scoring the current one.  The default is a no-op; arena- and
    /// spine-backed views forward to the epoch-page prefetch.
    fn prefetch_node(&self, id: NodeId) {
        let _ = id;
    }

    /// The ids of every node reachable from the root, in depth-first order.
    #[must_use]
    fn reachable(&self) -> Vec<NodeId> {
        let mut stack = vec![self.root()];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            out.push(id);
            if let NodeKind::Inner { entries } = &self.node(id).kind {
                for e in entries {
                    stack.push(e.child);
                }
            }
        }
        out
    }

    /// Number of nodes reachable from the root.
    #[must_use]
    fn num_nodes(&self) -> usize {
        self.reachable().len()
    }

    /// (Re)starts `cursor` on `query`: the frontier becomes the root's
    /// entries (or one synthetic element summarising a root that is itself a
    /// leaf), reusing the cursor's allocations.
    ///
    /// Reading the root is free — it is required to produce any model at all
    /// — so [`QueryCursor::nodes_read`] starts at 0 and counts refinement
    /// steps.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    fn begin_query<M>(&self, model: &M, query: &[f64], cursor: &mut QueryCursor)
    where
        M: QueryModel<S, LeafItem = L>,
    {
        assert_eq!(query.len(), self.dims(), "query dimensionality mismatch");
        cursor.reset(query);
        let root = self.root();
        match &self.node(root).kind {
            NodeKind::Inner { entries } => {
                cursor.push_entries(model, root, entries, self.block_cache(root), 1);
            }
            NodeKind::Leaf { items } => {
                if !items.is_empty() {
                    let summary = model.summarize_leaf_items(items);
                    cursor.push_summary(model, Some(root), &summary, ElementOrigin::RootLeaf, 1);
                }
            }
        }
    }

    /// Starts a fresh cursor on `query` (allocating; prefer
    /// [`TreeView::begin_query`] with a reused cursor on hot paths).
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    fn new_query<M>(&self, model: &M, query: &[f64]) -> QueryCursor
    where
        M: QueryModel<S, LeafItem = L>,
    {
        let mut cursor = QueryCursor::new();
        self.begin_query(model, query, &mut cursor);
        cursor
    }

    /// Performs one refinement step (one node read) in the given order:
    /// replaces the selected frontier element by its children (splitting out
    /// the refined entry's hitchhiker buffer, whose mass its summary
    /// covered) and updates the partial answer and bounds.
    ///
    /// Returns `false` (and changes nothing) when no element is refinable.
    fn refine_query<M>(&self, model: &M, order: RefineOrder, cursor: &mut QueryCursor) -> bool
    where
        M: QueryModel<S, LeafItem = L>,
    {
        let Some(idx) = cursor.select(order) else {
            return false;
        };
        let element = cursor.remove_element(idx);
        // The refined entry's summary covered its own hitchhiker buffer;
        // the children below only cover descended mass, so the buffer is
        // split out as an unrefinable element of its own.
        if let ElementOrigin::Entry { node, index } = element.origin {
            if let Some(buffer) = &self.node(node).entries()[index].buffer {
                cursor.push_summary(
                    model,
                    None,
                    buffer,
                    ElementOrigin::Buffer { node, index },
                    element.depth,
                );
            }
        }
        let child = element.child.expect("selected element is refinable");
        let child_depth = element.depth + 1;
        match &self.node(child).kind {
            NodeKind::Inner { entries } => {
                cursor.push_entries(model, child, entries, self.block_cache(child), child_depth);
            }
            NodeKind::Leaf { items } => {
                cursor.push_leaf_items(model, child, items, self.block_cache(child), child_depth);
            }
        }
        cursor.nodes_read += 1;
        cursor.stats.nodes_read += 1;
        // Overlap the next candidate's page load with the caller's work on
        // the scores just produced: peek the element the next refinement
        // step would select and prefetch its child's epoch-page slot.
        if let Some(next) = cursor.next_refinable_child(order) {
            self.prefetch_node(next);
            cursor.stats.prefetches += 1;
        }
        true
    }

    /// Refines until either `budget` node reads have been spent or nothing
    /// is refinable; returns the number of reads actually performed.
    fn refine_query_up_to<M>(
        &self,
        model: &M,
        order: RefineOrder,
        budget: usize,
        cursor: &mut QueryCursor,
    ) -> usize
    where
        M: QueryModel<S, LeafItem = L>,
    {
        let mut done = 0;
        while done < budget && self.refine_query(model, order, cursor) {
            done += 1;
        }
        done
    }

    /// One-shot query: starts a cursor, refines up to `budget` node reads
    /// and returns the answer.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    fn query_with_budget<M>(
        &self,
        model: &M,
        query: &[f64],
        order: RefineOrder,
        budget: usize,
    ) -> QueryAnswer
    where
        M: QueryModel<S, LeafItem = L>,
    {
        let started = crate::obs::boundary_timer();
        let mut cursor = self.new_query(model, query);
        self.refine_query_up_to(model, order, budget, &mut cursor);
        let answer = cursor.answer();
        crate::obs::record_query_answer(&answer, started);
        crate::obs::record_query_stats(cursor.stats());
        answer
    }

    /// Refines a batch of queries through **one reused cursor** (the
    /// frontier allocation is shared scratch), each up to `budget` node
    /// reads, and returns the per-query answers plus the batch's merged
    /// work counters.
    ///
    /// # Panics
    ///
    /// Panics if any query has the wrong dimensionality.
    #[must_use]
    fn query_batch<M>(
        &self,
        model: &M,
        queries: &[Vec<f64>],
        order: RefineOrder,
        budget: usize,
    ) -> (Vec<QueryAnswer>, QueryStats)
    where
        M: QueryModel<S, LeafItem = L>,
    {
        let mut recorder = crate::obs::QueryBatchRecorder::new();
        let mut cursor = QueryCursor::new();
        let mut answers = Vec::with_capacity(queries.len());
        for query in queries {
            self.begin_query(model, query, &mut cursor);
            self.refine_query_up_to(model, order, budget, &mut cursor);
            let answer = cursor.answer();
            recorder.record(&answer);
            answers.push(answer);
        }
        recorder.finish(cursor.stats());
        (answers, *cursor.stats())
    }

    /// Anytime outlier scoring: refines the density bounds (widest interval
    /// first) until the verdict against `threshold` is certain or `budget`
    /// node reads are spent — the first insert-free workload over the same
    /// index, needing only a [`Summary`] + [`QueryModel`].
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    fn outlier_score<M>(
        &self,
        model: &M,
        query: &[f64],
        threshold: f64,
        budget: usize,
    ) -> OutlierScore
    where
        M: QueryModel<S, LeafItem = L>,
    {
        let started = crate::obs::boundary_timer();
        let mut cursor = self.new_query(model, query);
        let mut verdict = cursor.answer().verdict(threshold);
        let mut round: u32 = 0;
        while verdict == OutlierVerdict::Undecided
            && cursor.nodes_read() < budget
            && self.refine_query(model, RefineOrder::WidestBound, &mut cursor)
        {
            round += 1;
            let answer = cursor.answer();
            verdict = answer.verdict(threshold);
            crate::obs::record_refine_step(
                round,
                cursor.nodes_read() as u64,
                answer.uncertainty(),
                verdict != OutlierVerdict::Undecided,
            );
        }
        let score = OutlierScore {
            answer: cursor.answer(),
            verdict,
        };
        crate::obs::record_verdict(verdict);
        crate::obs::record_query_answer(&score.answer, started);
        crate::obs::record_query_stats(cursor.stats());
        score
    }
}

impl<S: Summary, L> TreeView<S, L> for AnytimeTree<S, L> {
    fn dims(&self) -> usize {
        AnytimeTree::dims(self)
    }

    fn root(&self) -> NodeId {
        AnytimeTree::root(self)
    }

    fn node(&self, id: NodeId) -> &Node<S, L> {
        AnytimeTree::node(self, id)
    }

    fn height(&self) -> usize {
        AnytimeTree::height(self)
    }

    fn block_cache(&self, id: NodeId) -> Option<BlockCacheRef<'_>> {
        let arena = self.arena();
        let version = arena.version(id);
        Some(BlockCacheRef {
            slot: arena.cache_slot(id),
            version,
            // A node stamped past the published epoch belongs to an
            // in-flight batch that may still mutate it at the same stamp:
            // reuse what the batch cached for routing is fine elsewhere,
            // but a *query* must not store a scored block it could later
            // mistake for current.
            cacheable: version <= arena.epoch(),
        })
    }

    fn prefetch_node(&self, id: NodeId) {
        self.arena().prefetch(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InsertModel;
    use bt_index::PageGeometry;

    /// A minimal distance-routed payload: (weight, component sums) — same
    /// shape as the descent-engine tests' Blob.
    #[derive(Debug, Clone, PartialEq)]
    struct Blob {
        weight: f64,
        sum: Vec<f64>,
    }

    impl Blob {
        fn center_of(&self) -> Vec<f64> {
            self.sum.iter().map(|s| s / self.weight).collect()
        }
    }

    impl Summary for Blob {
        type Ctx = ();
        fn merge(&mut self, other: &Self, _ctx: ()) {
            self.weight += other.weight;
            for (a, b) in self.sum.iter_mut().zip(&other.sum) {
                *a += b;
            }
        }
        fn weight(&self) -> f64 {
            self.weight
        }
        fn sq_dist_to(&self, point: &[f64]) -> f64 {
            self.center_of()
                .iter()
                .zip(point)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        }
        fn center(&self) -> Vec<f64> {
            self.center_of()
        }
    }

    struct BlobModel;

    impl InsertModel<Blob> for BlobModel {
        type Object = Blob;
        type LeafItem = Blob;
        const BUFFERED: bool = true;

        fn ctx(&self) {}
        fn route_point<'a>(&self, obj: &'a Blob, scratch: &'a mut Vec<f64>) -> &'a [f64] {
            scratch.clear();
            scratch.extend(obj.center_of());
            scratch
        }
        fn summary_of(&self, obj: &Blob) -> Blob {
            obj.clone()
        }
        fn absorb_into(&self, summary: &mut Blob, obj: &Blob) {
            summary.merge(obj, ());
        }
        fn merge_buffer_into_object(&self, obj: &mut Blob, buffer: Blob) {
            obj.merge(&buffer, ());
        }
        fn insert_into_leaf(&mut self, items: &mut Vec<Blob>, obj: Blob) {
            items.push(obj);
        }
        fn summarize_leaf_items(&self, items: &[Blob]) -> Blob {
            let mut s = items[0].clone();
            for i in &items[1..] {
                s.merge(i, ());
            }
            s
        }
        fn split_leaf_items(
            &self,
            items: Vec<Blob>,
            geometry: &PageGeometry,
        ) -> (Vec<Blob>, Vec<Blob>) {
            let centers: Vec<Vec<f64>> = items.iter().map(Summary::center).collect();
            let (a, b) = crate::split::polar_partition(&centers, geometry.max_leaf);
            crate::split::distribute(items, &a, &b)
        }
    }

    /// A toy density model: contribution `w * exp(-d²)` of each element's
    /// centre, Jensen-free bounds `(0, w)` for summaries, exact at leaves.
    struct BlobQueryModel;

    impl QueryModel<Blob> for BlobQueryModel {
        type LeafItem = Blob;
        fn summary_contribution(&self, query: &[f64], summary: &Blob) -> f64 {
            summary.weight * (-summary.sq_dist_to(query)).exp()
        }
        fn summary_bounds(&self, _query: &[f64], summary: &Blob) -> (f64, f64) {
            (0.0, summary.weight)
        }
        fn leaf_contribution(&self, query: &[f64], item: &Blob) -> f64 {
            self.summary_contribution(query, item)
        }
        fn leaf_sq_dist(&self, query: &[f64], item: &Blob) -> f64 {
            item.sq_dist_to(query)
        }
        fn leaf_weight(&self, item: &Blob) -> f64 {
            item.weight
        }
        fn summarize_leaf_items(&self, items: &[Blob]) -> Blob {
            let mut s = items[0].clone();
            for i in &items[1..] {
                s.merge(i, ());
            }
            s
        }
    }

    fn blob(x: f64, y: f64) -> Blob {
        Blob {
            weight: 1.0,
            sum: vec![x, y],
        }
    }

    fn geometry() -> PageGeometry {
        PageGeometry {
            min_fanout: 1,
            max_fanout: 3,
            min_leaf: 1,
            max_leaf: 3,
        }
    }

    fn sample_tree(n: usize, budget: usize) -> AnytimeTree<Blob, Blob> {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        for i in 0..n {
            let c = if i % 2 == 0 { 0.0 } else { 20.0 };
            tree.insert(
                &mut model,
                blob(c + (i % 5) as f64 * 0.1, c + (i % 7) as f64 * 0.1),
                budget,
            );
        }
        tree
    }

    #[test]
    fn initial_frontier_covers_all_mass() {
        let tree = sample_tree(80, usize::MAX);
        let cursor = tree.new_query(&BlobQueryModel, &[0.0, 0.0]);
        assert!((cursor.total_weight() - 80.0).abs() < 1e-9);
        assert_eq!(cursor.nodes_read(), 0);
        assert!(cursor.can_refine());
    }

    #[test]
    fn refinement_conserves_weight_for_every_order() {
        for order in [
            RefineOrder::BreadthFirst,
            RefineOrder::DepthFirst,
            RefineOrder::ClosestFirst,
            RefineOrder::BestFirst,
            RefineOrder::WidestBound,
        ] {
            let tree = sample_tree(120, usize::MAX);
            let mut cursor = tree.new_query(&BlobQueryModel, &[1.0, 1.0]);
            while tree.refine_query(&BlobQueryModel, order, &mut cursor) {
                assert!(
                    (cursor.total_weight() - 120.0).abs() < 1e-9,
                    "{order:?}: weight drifted"
                );
            }
            assert!(!cursor.can_refine());
        }
    }

    #[test]
    fn parked_mass_surfaces_as_buffer_elements() {
        // Build with a finite budget so hitchhiker buffers hold mass, then
        // check the fully refined frontier still covers everything.
        let tree = sample_tree(150, 1);
        let mut cursor = tree.new_query(&BlobQueryModel, &[0.5, 0.5]);
        while tree.refine_query(&BlobQueryModel, RefineOrder::BreadthFirst, &mut cursor) {}
        assert!((cursor.total_weight() - 150.0).abs() < 1e-9);
        let buffered: f64 = cursor
            .elements()
            .iter()
            .filter(|e| matches!(e.origin, ElementOrigin::Buffer { .. }))
            .map(|e| e.weight)
            .sum();
        assert!(buffered > 0.0, "budget-1 inserts should have parked mass");
    }

    #[test]
    fn bounds_are_monotone_under_refinement() {
        let tree = sample_tree(200, usize::MAX);
        let mut cursor = tree.new_query(&BlobQueryModel, &[0.3, 0.2]);
        let mut last = cursor.uncertainty();
        let (mut last_lower, mut last_upper) = cursor.bounds();
        while tree.refine_query(&BlobQueryModel, RefineOrder::WidestBound, &mut cursor) {
            let (lower, upper) = cursor.bounds();
            assert!(lower >= last_lower - 1e-9, "lower bound regressed");
            assert!(upper <= last_upper + 1e-9, "upper bound regressed");
            assert!(cursor.uncertainty() <= last + 1e-9);
            last = cursor.uncertainty();
            last_lower = lower;
            last_upper = upper;
        }
        // Fully refined with nothing buffered: bounds collapse onto the
        // exact answer.
        assert!(cursor.uncertainty() < 1e-9);
        assert!((cursor.estimate() - cursor.bounds().0).abs() < 1e-9);
    }

    #[test]
    fn query_batch_reuses_one_cursor_and_counts_work() {
        let tree = sample_tree(100, usize::MAX);
        let queries = vec![vec![0.0, 0.0], vec![20.0, 20.0], vec![10.0, 10.0]];
        let (answers, stats) =
            tree.query_batch(&BlobQueryModel, &queries, RefineOrder::BestFirst, 4);
        assert_eq!(answers.len(), 3);
        assert_eq!(stats.queries, 3);
        assert_eq!(
            stats.nodes_read,
            answers.iter().map(|a| a.nodes_read as u64).sum::<u64>()
        );
        for a in &answers {
            assert!(a.lower <= a.estimate + 1e-9 && a.estimate <= a.upper + 1e-9);
        }
    }

    #[test]
    fn refinement_prefetches_the_next_candidate() {
        let tree = sample_tree(100, usize::MAX);
        let (_, stats) = tree.query_batch(
            &BlobQueryModel,
            &[vec![0.0, 0.0], vec![20.0, 20.0]],
            RefineOrder::BestFirst,
            6,
        );
        // Every refinement with a refinable successor prefetches it; only
        // the final step of an exhausted frontier has none, so the count
        // tracks nodes_read (never exceeding it).
        assert!(stats.prefetches > 0);
        assert!(stats.prefetches <= stats.nodes_read);
    }

    #[test]
    fn root_leaf_tree_exposes_one_synthetic_element() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        tree.insert(&mut model, blob(1.0, 1.0), usize::MAX);
        tree.insert(&mut model, blob(2.0, 2.0), usize::MAX);
        assert_eq!(tree.height(), 1);
        let mut cursor = tree.new_query(&BlobQueryModel, &[1.0, 1.0]);
        assert_eq!(cursor.elements().len(), 1);
        assert!(matches!(
            cursor.elements()[0].origin,
            ElementOrigin::RootLeaf
        ));
        assert!(tree.refine_query(&BlobQueryModel, RefineOrder::BestFirst, &mut cursor));
        assert_eq!(cursor.elements().len(), 2);
        assert!(!cursor.can_refine());
    }

    #[test]
    fn empty_tree_has_an_empty_frontier() {
        let tree: AnytimeTree<Blob, Blob> = AnytimeTree::new(2, geometry());
        let mut cursor = tree.new_query(&BlobQueryModel, &[0.0, 0.0]);
        assert!(cursor.elements().is_empty());
        assert!(!tree.refine_query(&BlobQueryModel, RefineOrder::BestFirst, &mut cursor));
        assert_eq!(cursor.estimate(), 0.0);
    }

    #[test]
    fn outlier_scoring_decides_with_few_reads() {
        let tree = sample_tree(200, usize::MAX);
        // A point far from both clusters: certainly an outlier at any
        // reasonable threshold.
        let far = tree.outlier_score(&BlobQueryModel, &[400.0, -400.0], 1e-3, 1_000);
        assert_eq!(far.verdict, OutlierVerdict::Outlier);
        // A point in the middle of the dense cluster: certainly an inlier.
        let near = tree.outlier_score(&BlobQueryModel, &[0.2, 0.2], 1e-3, 1_000);
        assert_eq!(near.verdict, OutlierVerdict::Inlier);
        // The outlier decision needed fewer reads than exhausting the tree.
        assert!(far.answer.nodes_read < tree.num_nodes());
    }

    #[test]
    fn query_stats_display_is_compact() {
        let stats = QueryStats {
            queries: 2,
            nodes_read: 17,
            elements_scored: 64,
            block_gathers: 5,
            gathers_avoided: 12,
            prefetches: 9,
        };
        assert_eq!(
            stats.to_string(),
            "queries=2 reads=17 scored=64 gathers=5 cached=12 prefetch=9"
        );
    }

    #[test]
    fn gather_hit_rate_handles_the_empty_case() {
        assert_eq!(QueryStats::default().gather_hit_rate(), 0.0);
        let stats = QueryStats {
            block_gathers: 1,
            gathers_avoided: 3,
            ..QueryStats::default()
        };
        assert_eq!(stats.gather_hit_rate(), 0.75);
    }
}
