//! The payload trait: what an entry aggregates about its subtree.

use bt_index::Mbr;

/// The additive summary a directory entry keeps about everything stored in
/// its subtree.
///
/// The Bayes tree instantiates this with an MBR + cluster feature (kernels),
/// the clustering extension with a decaying micro-cluster.  The core only
/// relies on the operations below:
///
/// * [`merge`](Summary::merge) — additivity, used to maintain ancestor
///   summaries and to build parent entries after splits,
/// * [`weight`](Summary::weight) — the (possibly decayed) object count,
/// * [`sq_dist_to`](Summary::sq_dist_to) / [`center`](Summary::center) —
///   the geometric routing and splitting measures for payloads without an
///   MBR,
/// * [`refresh`](Summary::refresh) — the temporal-decay hook (a no-op for
///   payloads without temporal semantics),
/// * [`mbr_corner`](Summary::mbr_corner) / [`owned_mbr`](Summary::owned_mbr)
///   \+ [`MBR_ROUTED`](Summary::MBR_ROUTED) — the hook into
///   `bt_index::rstar`: when set, descent routes by least area enlargement
///   and overflowing directory nodes split with the R* topological split
///   instead of the distance-based split.  Both accessors produce
///   full-width (`f64`) corners regardless of how the payload stores its
///   box internally.
pub trait Summary: Clone {
    /// Per-operation context threaded through merges and refreshes (e.g. the
    /// current timestamp and decay rate).  `()` for payloads without one.
    type Ctx: Copy;

    /// Whether descent and directory splits should use the MBR machinery of
    /// `bt_index::rstar` ([`mbr_corner`](Summary::mbr_corner) and
    /// [`owned_mbr`](Summary::owned_mbr) must then produce a box).
    const MBR_ROUTED: bool = false;

    /// Adds `other`'s mass to this summary.
    fn merge(&mut self, other: &Self, ctx: Self::Ctx);

    /// Number of objects currently summarised (fractional under decay).
    fn weight(&self) -> f64;

    /// Brings the summary up to date (e.g. applies exponential decay).
    fn refresh(&mut self, _ctx: Self::Ctx) {}

    /// Squared distance from this summary's representative to a point — the
    /// routing measure for payloads without an MBR.
    fn sq_dist_to(&self, point: &[f64]) -> f64;

    /// Representative centre, used by the distance-based split.
    fn center(&self) -> Vec<f64>;

    /// The minimum bounding rectangle, for MBR-routed payloads that store
    /// their box at full width and can lend it without conversion.
    ///
    /// Payloads that store their box narrower than `f64` (and so cannot
    /// return a reference) may leave this `None` and override
    /// [`mbr_corner`](Summary::mbr_corner) and
    /// [`owned_mbr`](Summary::owned_mbr) instead — those two are the
    /// accessors descent and splits actually route through.
    fn as_mbr(&self) -> Option<&Mbr> {
        None
    }

    /// The low and high corner of the routing box along dimension `d`,
    /// widened to full precision — the allocation-free per-dimension
    /// accessor the block gather paths stream boxes through.
    ///
    /// Must agree bit for bit with [`owned_mbr`](Summary::owned_mbr); the
    /// default reads [`as_mbr`](Summary::as_mbr), so payloads whose box is
    /// already full-width need not override it.
    fn mbr_corner(&self, d: usize) -> (f64, f64) {
        let mbr = self.as_mbr().expect("MBR-routed payload exposes a box");
        (mbr.lower()[d], mbr.upper()[d])
    }

    /// A full-width copy of the routing box, for the amortised-rare paths
    /// (R* splits, debug reference scans) that want whole rectangles.
    ///
    /// `None` exactly when the payload is not MBR-routed.  The default
    /// clones [`as_mbr`](Summary::as_mbr); narrow-stored payloads override
    /// it with an outward-rounded widening so the returned box encloses
    /// the stored one.
    fn owned_mbr(&self) -> Option<Mbr> {
        self.as_mbr().cloned()
    }

    /// Whether [`center_into`](Summary::center_into) reproduces the exact
    /// arithmetic of [`sq_dist_to`](Summary::sq_dist_to), so descent may
    /// route through the structure-of-arrays block path (gather all entry
    /// centres once, compute all squared distances in one vectorized pass)
    /// and still pick bit-identical subtrees.
    ///
    /// Leave `false` (the default) if `sq_dist_to` is anything other than
    /// the plain squared Euclidean distance to `center_into`'s output.
    const CENTER_ROUTED: bool = false;

    /// Writes the representative centre into `out` (cleared and refilled)
    /// without allocating — the gather hook for the block routing path.
    ///
    /// The default allocates via [`center`](Summary::center); payloads
    /// opting into [`CENTER_ROUTED`](Summary::CENTER_ROUTED) should override
    /// it with an allocation-free version whose per-dimension arithmetic
    /// matches `sq_dist_to` exactly.
    fn center_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.center());
    }
}
