//! Criterion bench: the anytime query engine — refinement convergence and
//! sharded query throughput at shard counts 1 / 2 / 4 / 8.
//!
//! Before the timed groups run, two smoke properties are asserted:
//!
//! * **refinement converges**: the fully refined cursor's estimate matches
//!   the flat kernel density, and the certain bound interval is
//!   non-increasing in budget (the monotone anytime contract),
//! * **sharded queries scale**: per-shard frontiers refine on their own
//!   scoped threads, so the folded query path performs ~K× the frontier
//!   node reads of a single tree in similar wall-clock.  On runners with
//!   ≥ 4 CPUs the 4-shard-vs-1-shard node-read throughput ratio must be
//!   ≥ 1.5× (on smaller runners it is reported but not asserted, since
//!   queries cannot beat the core count).

use bayestree::{BayesTree, DescentStrategy, ShardedBayesTree};
use bt_data::stream::DriftingStream;
use bt_index::PageGeometry;
use clustree::{ClusTree, ClusTreeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

const TREE_SIZE: usize = 4_000;
const NUM_QUERIES: usize = 64;
const QUERY_BUDGETS: [usize; 4] = [0, 8, 32, 128];
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BUDGET_PER_SHARD: usize = 64;
/// Required 4-shard node-read throughput ratio on runners with ≥ 4 CPUs.
const SMOKE_SPEEDUP: f64 = 1.5;

fn stream(len: usize) -> Vec<Vec<f64>> {
    DriftingStream::new(4, 3, 0.3, 0.002, 23)
        .generate(len)
        .into_iter()
        .map(|(p, _)| p)
        .collect()
}

fn geometry() -> PageGeometry {
    PageGeometry::from_fanout(4, 8)
}

fn build_single(points: &[Vec<f64>]) -> BayesTree {
    let mut tree: BayesTree = BayesTree::new(3, geometry());
    for chunk in points.chunks(256) {
        tree.insert_batch(chunk.to_vec());
    }
    tree.fit_bandwidth();
    tree
}

fn build_sharded(points: &[Vec<f64>], shards: usize) -> ShardedBayesTree {
    let mut tree: ShardedBayesTree = ShardedBayesTree::new(3, geometry(), shards);
    for chunk in points.chunks(256) {
        let _ = tree.insert_batch(chunk.to_vec());
    }
    tree.fit_bandwidth();
    tree
}

/// Best-of-3 wall-clock seconds of one query-batch closure; returns the
/// seconds together with the node reads the batch performed.
fn best_of_3(mut run: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut reads = 0;
    for _ in 0..3 {
        let start = Instant::now();
        reads = black_box(run());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, reads)
}

/// Asserts the monotone-refinement contract and, with enough cores, the
/// sharded query throughput smoke threshold.
fn assert_convergence_and_scaling() {
    let points = stream(TREE_SIZE);
    let tree = build_single(&points);
    let queries: Vec<Vec<f64>> = points
        .iter()
        .step_by(TREE_SIZE / NUM_QUERIES)
        .cloned()
        .collect();

    // (1) Convergence: full refinement reproduces the flat estimate with a
    // collapsed bound interval, and uncertainty never grows with budget.
    for query in queries.iter().take(8) {
        let mut last = f64::INFINITY;
        for budget in [0usize, 4, 16, 64, 256] {
            let answer = tree.anytime_density(query, DescentStrategy::default(), budget);
            assert!(
                answer.uncertainty() <= last + 1e-12,
                "uncertainty grew at budget {budget}"
            );
            last = answer.uncertainty();
        }
        let full = tree.anytime_density(query, DescentStrategy::default(), usize::MAX);
        let truth = tree.full_kernel_density(query);
        assert!(
            (full.estimate - truth).abs() <= 1e-9 * (1.0 + truth),
            "refinement did not converge: {} vs {truth}",
            full.estimate
        );
        assert!(full.uncertainty() < 1e-12, "bounds did not collapse");
    }

    // (2) Sharded scaling: same per-shard budget, K shards refine ~K× the
    // frontier reads; with ≥ 4 CPUs that must show up as ≥ 1.5× node-read
    // throughput at 4 shards vs 1.
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let sharded1 = build_sharded(&points, 1);
    let sharded4 = build_sharded(&points, 4);
    let (t1, reads1) = best_of_3(|| {
        sharded1
            .density_batch(&queries, DescentStrategy::default(), BUDGET_PER_SHARD)
            .1
            .nodes_read
    });
    let (t4, reads4) = best_of_3(|| {
        sharded4
            .density_batch(&queries, DescentStrategy::default(), BUDGET_PER_SHARD)
            .1
            .nodes_read
    });
    let throughput1 = reads1 as f64 / t1.max(1e-12);
    let throughput4 = reads4 as f64 / t4.max(1e-12);
    let ratio = throughput4 / throughput1.max(1e-12);
    eprintln!(
        "sharded query scaling ({cpus} CPUs): {NUM_QUERIES} queries, budget {BUDGET_PER_SHARD}/shard: \
         1 shard {reads1} reads in {t1:.4}s vs 4 shards {reads4} reads in {t4:.4}s \
         -> node-read throughput ratio {ratio:.2}x (smoke threshold {SMOKE_SPEEDUP}x, enforced at >= 4 CPUs)"
    );
    if cpus >= 4 {
        assert!(
            ratio >= SMOKE_SPEEDUP,
            "sharded query throughput regressed: {ratio:.2}x < {SMOKE_SPEEDUP}x on {cpus} CPUs"
        );
    }
}

fn anytime_query_benchmarks(c: &mut Criterion) {
    assert_convergence_and_scaling();

    let points = stream(TREE_SIZE);
    let tree = build_single(&points);
    let queries: Vec<Vec<f64>> = points
        .iter()
        .step_by(TREE_SIZE / NUM_QUERIES)
        .cloned()
        .collect();

    let mut group = c.benchmark_group("bayes_anytime_density");
    for &budget in &QUERY_BUDGETS {
        group.throughput(Throughput::Elements(NUM_QUERIES as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    tree.density_batch(black_box(&queries), DescentStrategy::default(), budget)
                        .0
                        .len()
                })
            },
        );
    }
    group.finish();

    let mut clus = ClusTree::new(3, ClusTreeConfig::default());
    for (i, chunk) in points.chunks(64).enumerate() {
        let _ = clus.insert_batch(chunk, i as f64, 8);
    }
    let mut group = c.benchmark_group("clustree_anytime_knn");
    for &budget in &QUERY_BUDGETS {
        group.throughput(Throughput::Elements(NUM_QUERIES as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    queries
                        .iter()
                        .map(|q| clus.anytime_knn(black_box(q), 3, budget).neighbors.len())
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("sharded_density_batch");
    for &shards in &SHARD_COUNTS {
        let sharded = build_sharded(&points, shards);
        group.throughput(Throughput::Elements(NUM_QUERIES as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, _shards| {
                b.iter(|| {
                    sharded
                        .density_batch(
                            black_box(&queries),
                            DescentStrategy::default(),
                            BUDGET_PER_SHARD,
                        )
                        .1
                        .nodes_read
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, anytime_query_benchmarks);
criterion_main!(benches);
