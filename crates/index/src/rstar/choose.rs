//! Choose-subtree: which child should receive a new object.

use crate::mbr::Mbr;

/// Chooses the child whose MBR needs the least area enlargement to cover
/// `point`; ties are broken by smaller area, then by lower index.
///
/// This is the classic R-tree insertion heuristic the Bayes tree inherits
/// for its iterative (non-bulk) construction.
///
/// # Panics
///
/// Panics if `children` is empty.
#[must_use]
pub fn choose_subtree(children: &[Mbr], point: &[f64]) -> usize {
    choose_subtree_by(children, |m| m, point)
}

/// Payload-generic variant of [`choose_subtree`]: chooses among arbitrary
/// entries through an accessor that exposes each entry's MBR, avoiding any
/// rectangle cloning on the descent hot path.
///
/// # Panics
///
/// Panics if `children` is empty.
#[must_use]
pub fn choose_subtree_by<T, F>(children: &[T], mbr_of: F, point: &[f64]) -> usize
where
    F: Fn(&T) -> &Mbr,
{
    assert!(!children.is_empty(), "cannot choose among zero children");
    let mut best = 0usize;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, child) in children.iter().enumerate() {
        let mbr = mbr_of(child);
        let enlargement = mbr.enlargement_for_point(point);
        let area = mbr.area();
        if enlargement < best_enlargement || (enlargement == best_enlargement && area < best_area) {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}

/// Structure-of-arrays variant of [`choose_subtree_by`]: the child boxes
/// arrive as dimension-major `lower` / `upper` columns (`dim * len + entry`,
/// the gather produced by the descent scratch), and areas / grown areas for
/// all `len` children are accumulated in one autovectorizable pass per
/// dimension before a single selection scan.
///
/// The arithmetic replicates the scalar path exactly — per-child area and
/// point-extended area are products over dimensions in ascending order
/// (starting from `1.0`, as `Iterator::product` does), enlargement is their
/// difference, and the selection scan keeps the *first* child with strictly
/// smaller enlargement, breaking ties by strictly smaller area — so the
/// chosen index is always identical to [`choose_subtree_by`]'s.
///
/// `areas` and `grown` are caller-owned scratch, cleared and refilled.
///
/// # Panics
///
/// Panics if `len` is zero.
#[must_use]
pub fn choose_subtree_block(
    point: &[f64],
    lower: &[f64],
    upper: &[f64],
    len: usize,
    areas: &mut Vec<f64>,
    grown: &mut Vec<f64>,
) -> usize {
    assert!(len > 0, "cannot choose among zero children");
    debug_assert_eq!(lower.len(), point.len() * len);
    debug_assert_eq!(upper.len(), point.len() * len);
    areas.clear();
    areas.resize(len, 1.0);
    grown.clear();
    grown.resize(len, 1.0);
    for (d, &p) in point.iter().enumerate() {
        let lcol = &lower[d * len..(d + 1) * len];
        let ucol = &upper[d * len..(d + 1) * len];
        for i in 0..len {
            let lo = lcol[i];
            let hi = ucol[i];
            areas[i] *= hi - lo;
            grown[i] *= hi.max(p) - lo.min(p);
        }
    }
    let mut best = 0usize;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for i in 0..len {
        let enlargement = grown[i] - areas[i];
        let area = areas[i];
        if enlargement < best_enlargement || (enlargement == best_enlargement && area < best_area) {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}

/// Chooses the child whose MBR gains the least *overlap* with its siblings
/// when enlarged to cover `point` — the R* refinement used at the level just
/// above the leaves.  Falls back to least enlargement on ties.
///
/// # Panics
///
/// Panics if `children` is empty.
#[must_use]
pub fn choose_subtree_by_overlap(children: &[Mbr], point: &[f64]) -> usize {
    assert!(!children.is_empty(), "cannot choose among zero children");
    let mut best = 0usize;
    let mut best_overlap_increase = f64::INFINITY;
    let mut best_enlargement = f64::INFINITY;
    for (i, mbr) in children.iter().enumerate() {
        let mut grown = mbr.clone();
        grown.extend_point(point);
        let mut before = 0.0;
        let mut after = 0.0;
        for (j, other) in children.iter().enumerate() {
            if i == j {
                continue;
            }
            before += mbr.overlap(other);
            after += grown.overlap(other);
        }
        let overlap_increase = after - before;
        let enlargement = mbr.enlargement_for_point(point);
        if overlap_increase < best_overlap_increase
            || (overlap_increase == best_overlap_increase && enlargement < best_enlargement)
        {
            best = i;
            best_overlap_increase = overlap_increase;
            best_enlargement = enlargement;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn children() -> Vec<Mbr> {
        vec![
            Mbr::new(vec![0.0, 0.0], vec![1.0, 1.0]),
            Mbr::new(vec![5.0, 5.0], vec![6.0, 6.0]),
        ]
    }

    #[test]
    fn point_inside_a_child_chooses_that_child() {
        assert_eq!(choose_subtree(&children(), &[0.5, 0.5]), 0);
        assert_eq!(choose_subtree(&children(), &[5.5, 5.5]), 1);
    }

    #[test]
    fn point_between_children_chooses_nearer_one() {
        assert_eq!(choose_subtree(&children(), &[1.5, 1.5]), 0);
        assert_eq!(choose_subtree(&children(), &[4.8, 4.8]), 1);
    }

    #[test]
    fn tie_broken_by_area() {
        let kids = vec![
            Mbr::new(vec![0.0, 0.0], vec![4.0, 4.0]),
            Mbr::new(vec![0.0, 0.0], vec![2.0, 2.0]),
        ];
        // Point inside both: zero enlargement for both, smaller area wins.
        assert_eq!(choose_subtree(&kids, &[1.0, 1.0]), 1);
    }

    #[test]
    fn overlap_variant_prefers_less_overlap_growth() {
        let kids = vec![
            Mbr::new(vec![0.0, 0.0], vec![2.0, 2.0]),
            Mbr::new(vec![1.5, 0.0], vec![3.5, 2.0]),
            Mbr::new(vec![10.0, 10.0], vec![11.0, 11.0]),
        ];
        // A point near the isolated child should go there under both rules.
        assert_eq!(choose_subtree_by_overlap(&kids, &[10.5, 10.2]), 2);
    }

    #[test]
    #[should_panic(expected = "zero children")]
    fn empty_children_panics() {
        let _ = choose_subtree(&[], &[0.0]);
    }

    /// Gathers boxes into dimension-major columns and runs the block chooser.
    fn choose_block(kids: &[Mbr], point: &[f64]) -> usize {
        let dims = point.len();
        let len = kids.len();
        let mut lower = vec![0.0; dims * len];
        let mut upper = vec![0.0; dims * len];
        for (i, mbr) in kids.iter().enumerate() {
            for d in 0..dims {
                lower[d * len + i] = mbr.lower()[d];
                upper[d * len + i] = mbr.upper()[d];
            }
        }
        let (mut areas, mut grown) = (Vec::new(), Vec::new());
        choose_subtree_block(point, &lower, &upper, len, &mut areas, &mut grown)
    }

    #[test]
    fn block_chooser_matches_scalar_everywhere() {
        // A grid of boxes with deliberate exact ties (identical boxes,
        // nested boxes, zero-area boxes) probed at many points.
        let kids = vec![
            Mbr::new(vec![0.0, 0.0], vec![4.0, 4.0]),
            Mbr::new(vec![0.0, 0.0], vec![2.0, 2.0]),
            Mbr::new(vec![0.0, 0.0], vec![2.0, 2.0]),
            Mbr::new(vec![1.0, 1.0], vec![1.0, 1.0]),
            Mbr::new(vec![5.0, 5.0], vec![6.0, 6.5]),
            Mbr::new(vec![-3.0, -2.0], vec![-1.0, 7.0]),
        ];
        for ix in -8..16 {
            for iy in -8..16 {
                let p = [ix as f64 * 0.7, iy as f64 * 0.7];
                let scalar = choose_subtree(&kids, &p);
                let block = choose_block(&kids, &p);
                assert_eq!(scalar, block, "divergence at {p:?}");
            }
        }
    }

    #[test]
    fn block_chooser_single_child() {
        let kids = vec![Mbr::new(vec![0.0], vec![1.0])];
        assert_eq!(choose_block(&kids, &[9.0]), 0);
    }
}
