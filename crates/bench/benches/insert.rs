//! Criterion bench: incremental insertion throughput — the "learn from new
//! training data incrementally and online" requirement of Section 1.

use bayestree::BayesTree;
use bt_data::synth::Benchmark;
use bt_index::PageGeometry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn insert_benchmarks(c: &mut Criterion) {
    let dataset = Benchmark::Pendigits.generate(5_000, 11);
    let dims = dataset.dims();
    let geometry = PageGeometry::default_for_dims(dims);

    let mut group = c.benchmark_group("iterative_insert");
    for &n in &[500usize, 2_000, 5_000] {
        let points: Vec<Vec<f64>> = dataset.features()[..n].to_vec();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, points| {
            b.iter(|| {
                let mut tree: BayesTree = BayesTree::new(dims, geometry);
                for p in points {
                    tree.insert(black_box(p.clone()));
                }
                black_box(tree.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, insert_benchmarks);
criterion_main!(benches);
