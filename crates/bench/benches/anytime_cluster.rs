//! Criterion bench: insertion throughput of the anytime clustering tree at
//! different per-object node budgets (Section 4.2 — the model adapts to the
//! stream speed, and insertion must stay cheap even for generous budgets).

use bt_data::stream::DriftingStream;
use clustree::{ClusTree, ClusTreeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn cluster_benchmarks(c: &mut Criterion) {
    let stream = DriftingStream::new(4, 4, 0.3, 0.001, 3).generate(5_000);

    let mut group = c.benchmark_group("clustree_insert");
    for &budget in &[1usize, 4, 16] {
        group.throughput(Throughput::Elements(stream.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    let mut tree = ClusTree::new(4, ClusTreeConfig::default());
                    for (t, (p, _)) in stream.iter().enumerate() {
                        tree.insert(black_box(p), t as f64, budget);
                    }
                    black_box(tree.num_micro_clusters())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, cluster_benchmarks);
criterion_main!(benches);
