//! Structure-of-arrays summary blocks: dimension-major columns over one
//! node's entries, so the hot kernels evaluate a whole node in one pass.
//!
//! The anytime engines spend their time scoring the entries of one directory
//! node against one point: per-entry Gaussian log-kernels, squared distances
//! and MBR bound kernels.  Stored entry-major (`Vec<f64>` per summary) those
//! evaluations are one scattered dot product per entry.  A [`SummaryBlock`]
//! regathers the node into **dimension-major columns** — for a node of `n`
//! entries over `d` dimensions, column value `(dim, entry)` lives at index
//! `dim * n + entry` — so the batch kernels in [`crate::kernel`]
//! ([`crate::kernel::gaussian_log_terms_block`],
//! [`crate::kernel::sq_dists_block`],
//! [`crate::kernel::nearest_point_log_kernels_block`], …) stream each
//! column once, hoist the per-dimension constants (floored bandwidth, its
//! log) out of the entry loop, and accumulate all `n` results in
//! autovectorizable inner loops.
//!
//! **Precision.** Columns store `f64` by default.  The opt-in
//! [`BlockPrecision::F32`] mode halves the memory bandwidth of every column
//! stream; values are widened back to `f64` element by element before any
//! arithmetic, so **accumulation is always scalar `f64`** — only the stored
//! operands are quantised.  The entry-major scalar path remains the
//! property-tested reference (see `crates/stats/tests/block_kernels.rs`):
//! `f64` columns reproduce it bit for bit, `f32` columns within the
//! quantisation tolerance documented there.
//!
//! A block is plain reusable scratch: gather a node with [`SummaryBlock::
//! reset`] + the `set_*` writers, evaluate, reuse for the next node.  The
//! per-entry values can be read back out ([`SummaryBlock::entry_mean_into`]
//! and friends), so the block is convertible in both directions.

/// Storage precision of a block's value columns.
///
/// Weights and all kernel outputs stay `f64` in either mode; `F32` only
/// narrows the stored mean / variance / box columns (2× memory bandwidth on
/// the column streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockPrecision {
    /// Full-precision columns — bit-identical to the scalar reference.
    #[default]
    F64,
    /// Narrowed columns — operands quantised to `f32` at gather time,
    /// widened to `f64` before every arithmetic operation.
    F32,
}

/// An element type a column may store; widened to `f64` before arithmetic.
pub trait ColumnElement: Copy {
    /// The value as `f64`.
    fn widen(self) -> f64;
    /// Quantises an `f64` into this storage type.
    fn narrow(v: f64) -> Self;
}

impl ColumnElement for f64 {
    #[inline(always)]
    fn widen(self) -> f64 {
        self
    }
    #[inline(always)]
    fn narrow(v: f64) -> Self {
        v
    }
}

impl ColumnElement for f32 {
    #[inline(always)]
    fn widen(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn narrow(v: f64) -> Self {
        v as f32
    }
}

/// One dimension-major column group, stored at the block's precision.
///
/// Logical index `(dim, entry)` maps to flat index `dim * len + entry`,
/// where `len` is the number of entries in the block.
#[derive(Debug, Clone)]
pub enum Columns {
    /// Full-precision storage.
    F64(Vec<f64>),
    /// Narrowed storage (widened to `f64` before arithmetic).
    F32(Vec<f32>),
}

impl Default for Columns {
    fn default() -> Self {
        Columns::F64(Vec::new())
    }
}

impl Columns {
    fn with_precision(precision: BlockPrecision) -> Self {
        match precision {
            BlockPrecision::F64 => Columns::F64(Vec::new()),
            BlockPrecision::F32 => Columns::F32(Vec::new()),
        }
    }

    /// Switches the storage precision, clearing the values if it changes.
    pub fn set_precision(&mut self, precision: BlockPrecision) {
        if self.precision() != precision {
            *self = Self::with_precision(precision);
        }
    }

    /// Clears and zero-fills the columns to `n` values.
    pub fn reset(&mut self, n: usize) {
        match self {
            Columns::F64(v) => {
                v.clear();
                v.resize(n, 0.0);
            }
            Columns::F32(v) => {
                v.clear();
                v.resize(n, 0.0);
            }
        }
    }

    /// Number of stored values.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Columns::F64(v) => v.len(),
            Columns::F32(v) => v.len(),
        }
    }

    /// Whether no values are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stores `value` at flat index `idx` (quantising in `F32` mode).
    #[inline]
    pub fn set(&mut self, idx: usize, value: f64) {
        match self {
            Columns::F64(v) => v[idx] = value,
            Columns::F32(v) => v[idx] = value as f32,
        }
    }

    /// Reads the value at flat index `idx`, widened to `f64`.
    #[inline]
    #[must_use]
    pub fn get(&self, idx: usize) -> f64 {
        match self {
            Columns::F64(v) => v[idx],
            Columns::F32(v) => f64::from(v[idx]),
        }
    }

    /// The storage precision of these columns.
    #[must_use]
    pub fn precision(&self) -> BlockPrecision {
        match self {
            Columns::F64(_) => BlockPrecision::F64,
            Columns::F32(_) => BlockPrecision::F32,
        }
    }
}

/// A structure-of-arrays gather of one node's entry summaries: per-entry
/// weights plus dimension-major mean / variance columns and (optionally)
/// MBR lower / upper columns.
///
/// See the [module docs](crate::block) for the layout and precision story.
#[derive(Debug, Clone, Default)]
pub struct SummaryBlock {
    len: usize,
    dims: usize,
    weight: Vec<f64>,
    mean: Columns,
    var: Columns,
    lower: Columns,
    upper: Columns,
    has_boxes: bool,
}

impl SummaryBlock {
    /// An empty full-precision block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty block storing its columns at `precision`.
    #[must_use]
    pub fn with_precision(precision: BlockPrecision) -> Self {
        Self {
            len: 0,
            dims: 0,
            weight: Vec::new(),
            mean: Columns::with_precision(precision),
            var: Columns::with_precision(precision),
            lower: Columns::with_precision(precision),
            upper: Columns::with_precision(precision),
            has_boxes: false,
        }
    }

    /// The precision new columns are stored at.
    #[must_use]
    pub fn precision(&self) -> BlockPrecision {
        self.mean.precision()
    }

    /// Switches the column precision (clearing any gathered data).
    pub fn set_precision(&mut self, precision: BlockPrecision) {
        if self.precision() != precision {
            *self = Self::with_precision(precision);
        }
    }

    /// Clears the block and sizes it for `len` entries over `dims`
    /// dimensions (weights and mean / variance columns zero-filled, box
    /// columns disabled until [`Self::enable_boxes`]).
    pub fn reset(&mut self, dims: usize, len: usize) {
        self.dims = dims;
        self.len = len;
        self.weight.clear();
        self.weight.resize(len, 0.0);
        self.mean.reset(dims * len);
        self.var.reset(dims * len);
        self.lower.reset(0);
        self.upper.reset(0);
        self.has_boxes = false;
    }

    /// Enables the MBR lower / upper columns (zero-filled) for the current
    /// shape.
    pub fn enable_boxes(&mut self) {
        self.lower.reset(self.dims * self.len);
        self.upper.reset(self.dims * self.len);
        self.has_boxes = true;
    }

    /// Number of gathered entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the gathered summaries.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Whether the MBR columns are gathered.
    #[must_use]
    pub fn has_boxes(&self) -> bool {
        self.has_boxes
    }

    /// Flat column index of `(dim, entry)`.
    #[inline]
    #[must_use]
    pub fn col(&self, dim: usize, entry: usize) -> usize {
        dim * self.len + entry
    }

    /// Sets entry `i`'s weight.
    #[inline]
    pub fn set_weight(&mut self, i: usize, w: f64) {
        self.weight[i] = w;
    }

    /// Per-entry weights (always `f64`).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weight
    }

    /// Sets the mean of entry `i` along `dim`.
    #[inline]
    pub fn set_mean(&mut self, dim: usize, i: usize, v: f64) {
        let idx = self.col(dim, i);
        self.mean.set(idx, v);
    }

    /// Sets the variance of entry `i` along `dim`.
    #[inline]
    pub fn set_var(&mut self, dim: usize, i: usize, v: f64) {
        let idx = self.col(dim, i);
        self.var.set(idx, v);
    }

    /// Sets the box lower bound of entry `i` along `dim`.
    #[inline]
    pub fn set_lower(&mut self, dim: usize, i: usize, v: f64) {
        let idx = self.col(dim, i);
        self.lower.set(idx, v);
    }

    /// Sets the box upper bound of entry `i` along `dim`.
    #[inline]
    pub fn set_upper(&mut self, dim: usize, i: usize, v: f64) {
        let idx = self.col(dim, i);
        self.upper.set(idx, v);
    }

    /// The dimension-major mean columns.
    #[must_use]
    pub fn mean(&self) -> &Columns {
        &self.mean
    }

    /// The dimension-major variance columns.
    #[must_use]
    pub fn var(&self) -> &Columns {
        &self.var
    }

    /// The dimension-major box lower-bound columns.
    #[must_use]
    pub fn lower(&self) -> &Columns {
        &self.lower
    }

    /// The dimension-major box upper-bound columns.
    #[must_use]
    pub fn upper(&self) -> &Columns {
        &self.upper
    }

    /// Reads entry `i`'s mean back out (entry-major) — the inverse of the
    /// gather, used by round-trip tests.
    pub fn entry_mean_into(&self, i: usize, out: &mut Vec<f64>) {
        out.clear();
        for d in 0..self.dims {
            out.push(self.mean.get(self.col(d, i)));
        }
    }

    /// Reads entry `i`'s variance back out (entry-major).
    pub fn entry_var_into(&self, i: usize, out: &mut Vec<f64>) {
        out.clear();
        for d in 0..self.dims {
            out.push(self.var.get(self.col(d, i)));
        }
    }

    /// Reads entry `i`'s box back out as `(lower, upper)` (entry-major).
    pub fn entry_box_into(&self, i: usize, lower: &mut Vec<f64>, upper: &mut Vec<f64>) {
        lower.clear();
        upper.clear();
        for d in 0..self.dims {
            lower.push(self.lower.get(self.col(d, i)));
            upper.push(self.upper.get(self.col(d, i)));
        }
    }
}

/// Engine-owned scratch for block scoring: one [`SummaryBlock`] plus
/// reusable per-entry `f64` output lanes for the batch kernels (log-kernels,
/// bound kernels, squared distances — up to four concurrent results per
/// node).
#[derive(Debug, Clone, Default)]
pub struct BlockScratch {
    /// The gathered column block.
    pub block: SummaryBlock,
    /// Reusable per-entry output buffers.
    pub lanes: [Vec<f64>; 4],
    /// Dimension-major routing-centre columns, for models whose geometric
    /// priority uses a centre whose rounding differs from the block's
    /// Gaussian mean (e.g. `ls * (1/n)` versus `ls / n`).
    pub centers: Columns,
}

impl BlockScratch {
    /// An empty scratch at full column precision.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty scratch whose block stores columns at `precision`.
    #[must_use]
    pub fn with_precision(precision: BlockPrecision) -> Self {
        Self {
            block: SummaryBlock::with_precision(precision),
            lanes: Default::default(),
            centers: Columns::with_precision(precision),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trips_entries() {
        let mut block = SummaryBlock::new();
        block.reset(2, 3);
        block.enable_boxes();
        for i in 0..3 {
            block.set_weight(i, i as f64 + 1.0);
            for d in 0..2 {
                block.set_mean(d, i, 10.0 * d as f64 + i as f64);
                block.set_var(d, i, 0.5 + i as f64);
                block.set_lower(d, i, -1.0 - d as f64);
                block.set_upper(d, i, 1.0 + i as f64);
            }
        }
        assert_eq!(block.weights(), &[1.0, 2.0, 3.0]);
        let mut mean = Vec::new();
        let mut var = Vec::new();
        block.entry_mean_into(1, &mut mean);
        block.entry_var_into(1, &mut var);
        assert_eq!(mean, vec![1.0, 11.0]);
        assert_eq!(var, vec![1.5, 1.5]);
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        block.entry_box_into(2, &mut lo, &mut hi);
        assert_eq!(lo, vec![-1.0, -2.0]);
        assert_eq!(hi, vec![3.0, 3.0]);
    }

    #[test]
    fn f32_mode_quantises_but_keeps_f64_reads() {
        let mut block = SummaryBlock::with_precision(BlockPrecision::F32);
        block.reset(1, 1);
        let v = 0.1f64;
        block.set_mean(0, 0, v);
        let got = block.mean().get(0);
        assert_eq!(got, f64::from(0.1f32));
        assert!((got - v).abs() < 1e-7);
    }

    #[test]
    fn set_precision_switches_storage() {
        let mut block = SummaryBlock::new();
        assert_eq!(block.precision(), BlockPrecision::F64);
        block.set_precision(BlockPrecision::F32);
        assert_eq!(block.precision(), BlockPrecision::F32);
        block.reset(1, 2);
        assert_eq!(block.mean().precision(), BlockPrecision::F32);
    }
}
