//! Bulk-loading comparison (Section 3): build the per-class Bayes trees with
//! every construction strategy and compare their anytime accuracy curves on
//! one workload — a miniature version of the paper's Figure 2.
//!
//! Run with `cargo run --release --example bulk_loading_comparison`.

use anytime_stream_mining::bayestree::BulkLoadMethod;
use anytime_stream_mining::data::synth::Benchmark;
use anytime_stream_mining::eval::curve::anytime_accuracy_curve;
use anytime_stream_mining::eval::{ascii_chart, CurveConfig};

fn main() {
    let dataset = Benchmark::Pendigits.generate(3_000, 42);
    let config = CurveConfig {
        max_nodes: 60,
        folds: 4,
        max_test_queries: Some(150),
        ..CurveConfig::default()
    };

    let mut curves = Vec::new();
    for method in BulkLoadMethod::all() {
        let curve = anytime_accuracy_curve(&dataset, method, &config);
        println!(
            "{:<10}  accuracy after 0/10/30/60 nodes: {:.3} / {:.3} / {:.3} / {:.3}",
            curve.label,
            curve.at(0),
            curve.at(10),
            curve.at(30),
            curve.at(60)
        );
        curves.push(curve);
    }

    println!("\n{}", ascii_chart(&curves, 18, 64));
    println!("EM top-down bulk loading should dominate, iterative insertion should trail —");
    println!("the ordering reported in the paper's Figures 2 and 3.");
}
