//! Goldberger bulk load (Section 3.1).
//!
//! Bottom-up statistical construction: the training set is viewed as a fine
//! mixture model with one kernel per object; a coarser mixture with one
//! component per page is computed with the Goldberger & Roweis regroup/refit
//! iteration (initialised by the z-curve order of the component means,
//! `0.75 * capacity` fine components per coarse component); the coarse
//! components become Bayes-tree nodes and the procedure repeats one level up
//! until a single root remains.
//!
//! Because the converged mapping may assign more than the page capacity to a
//! single coarse component, a post-processing pass splits over-full groups
//! (two representatives obtained by shifting the group mean along its
//! highest-variance dimension, members re-assigned by KL divergence) and
//! merges under-full groups into their KL-closest neighbour.

use crate::bulk::finish_bottom_up;
use crate::node::Entry;
use crate::tree::BayesTree;
use bt_index::{z_order_sort_order, PageGeometry};
use bt_stats::bandwidth::silverman_bandwidth;
use bt_stats::goldberger::{chunked_mapping, reduce_mixture, GoldbergerConfig};
use bt_stats::kl::kl_diag_gaussian;
use bt_stats::mixture::{GaussianMixture, WeightedComponent};
use bt_stats::DiagGaussian;

/// Tuning knobs of the Goldberger bulk load.
#[derive(Debug, Clone)]
pub struct GoldbergerBulkConfig {
    /// Fraction of the node capacity used for the initial mapping's group
    /// size (the paper uses 0.75).
    pub initial_fill: f64,
    /// Inner regroup/refit configuration.
    pub reduction: GoldbergerConfig,
    /// Bits per dimension for the z-curve used in the initial mapping.
    pub curve_bits: u32,
}

impl Default for GoldbergerBulkConfig {
    fn default() -> Self {
        Self {
            initial_fill: 0.75,
            reduction: GoldbergerConfig::default(),
            curve_bits: 16,
        }
    }
}

/// One fine component handed to the per-level partitioning step.
#[derive(Debug, Clone)]
struct Component {
    weight: f64,
    gaussian: DiagGaussian,
}

/// Builds a Bayes tree with the Goldberger bulk load.
#[must_use]
pub fn build_goldberger(
    points: &[Vec<f64>],
    dims: usize,
    geometry: PageGeometry,
    config: &GoldbergerBulkConfig,
) -> BayesTree {
    let mut tree: BayesTree = BayesTree::new(dims, geometry);
    if points.is_empty() {
        return tree;
    }

    // Fine mixture at the leaf level: one kernel per training object, with
    // the Silverman bandwidth as its variance.
    let bandwidth = silverman_bandwidth(points, dims);
    let variance: Vec<f64> = bandwidth.iter().map(|h| h * h).collect();
    let kernel_components: Vec<Component> = points
        .iter()
        .map(|p| Component {
            weight: 1.0 / points.len() as f64,
            gaussian: DiagGaussian::new(p.clone(), variance.clone()),
        })
        .collect();

    // Partition the kernels into leaf pages.
    let leaf_groups = goldberger_partition(
        &kernel_components,
        geometry.max_leaf,
        geometry.min_leaf,
        config,
    );
    let entries: Vec<Entry> = leaf_groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|group| {
            let leaf_points: Vec<Vec<f64>> = group.iter().map(|&i| points[i].clone()).collect();
            let node = tree.push_node(bt_anytree::Node::leaf(leaf_points));
            tree.summarise(node)
        })
        .collect();

    // Stack directory levels, partitioning the entry Gaussians the same way.
    let entries = build_directory_levels(&mut tree, entries, config);
    finish_bottom_up(&mut tree, entries, points.len(), &|reps, capacity| {
        // Final fallback grouping when a single root-level pass is still
        // needed: plain z-curve chunks (only reached for tiny inputs).
        let order = z_order_sort_order(reps, config.curve_bits);
        order
            .chunks(capacity.max(1))
            .map(<[usize]>::to_vec)
            .collect()
    });
    tree.set_bandwidth(bandwidth);
    tree
}

/// Builds directory levels with Goldberger partitioning until the remaining
/// entries fit into a single root node.
fn build_directory_levels(
    tree: &mut BayesTree,
    mut entries: Vec<Entry>,
    config: &GoldbergerBulkConfig,
) -> Vec<Entry> {
    let geometry = tree.geometry();
    while entries.len() > geometry.max_fanout {
        let total_weight: f64 = entries.iter().map(|e| e.weight()).sum();
        let components: Vec<Component> = entries
            .iter()
            .map(|e| Component {
                weight: e.weight() / total_weight,
                gaussian: e.gaussian(),
            })
            .collect();
        let groups = goldberger_partition(
            &components,
            geometry.max_fanout,
            geometry.min_fanout,
            config,
        );
        let mut next = Vec::with_capacity(groups.len());
        for group in groups {
            if group.is_empty() {
                continue;
            }
            let node_entries: Vec<Entry> = group.iter().map(|&i| entries[i].clone()).collect();
            let node = tree.push_node(bt_anytree::Node::inner(node_entries));
            next.push(tree.summarise(node));
        }
        // Guard against a degenerate partition that failed to reduce the
        // entry count (cannot normally happen, but protects against an
        // infinite loop on adversarial inputs).
        if next.len() >= entries.len() {
            break;
        }
        entries = next;
    }
    entries
}

/// Partitions fine components into groups of at most `capacity` (and, where
/// possible, at least `min_size`) following the paper's procedure.
fn goldberger_partition(
    components: &[Component],
    capacity: usize,
    min_size: usize,
    config: &GoldbergerBulkConfig,
) -> Vec<Vec<usize>> {
    assert!(capacity >= 2, "capacity must be at least 2");
    if components.len() <= capacity {
        return vec![(0..components.len()).collect()];
    }

    // Initial mapping: 0.75 * capacity consecutive components per group in
    // z-curve order of the means.
    let means: Vec<Vec<f64>> = components
        .iter()
        .map(|c| c.gaussian.mean().to_vec())
        .collect();
    let order = z_order_sort_order(&means, config.curve_bits);
    let group_size = ((capacity as f64 * config.initial_fill).floor() as usize).max(1);
    let initial_mapping = chunked_mapping(&order, group_size);

    // Regroup / refit.
    let fine = GaussianMixture::from_components(
        components
            .iter()
            .map(|c| WeightedComponent {
                weight: c.weight,
                gaussian: c.gaussian.clone(),
            })
            .collect(),
    );
    let result = reduce_mixture(&fine, &initial_mapping, &config.reduction);

    // Collect groups from the final mapping.
    let num_groups = result.mapping.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); num_groups];
    for (i, &g) in result.mapping.iter().enumerate() {
        groups[g].push(i);
    }
    groups.retain(|g| !g.is_empty());

    // Post-processing: split over-full groups...
    let mut final_groups: Vec<Vec<usize>> = Vec::new();
    for group in groups {
        if group.len() <= capacity {
            final_groups.push(group);
        } else {
            split_group(components, group, capacity, &mut final_groups);
        }
    }
    // ...and merge under-full groups into their KL-closest neighbour.
    merge_small_groups(components, &mut final_groups, capacity, min_size);
    final_groups
}

/// Recursively splits a group along its highest-variance dimension by placing
/// two representative Gaussians at `mean ± epsilon` and re-assigning members
/// by KL divergence.
fn split_group(
    components: &[Component],
    group: Vec<usize>,
    capacity: usize,
    out: &mut Vec<Vec<usize>>,
) {
    if group.len() <= capacity {
        out.push(group);
        return;
    }
    let (mean, variance) = moment_match(components, &group);
    let split_dim = variance
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map_or(0, |(d, _)| d);
    let epsilon = variance[split_dim].sqrt().max(1e-6);
    let mut low_mean = mean.clone();
    let mut high_mean = mean.clone();
    low_mean[split_dim] -= epsilon;
    high_mean[split_dim] += epsilon;
    let low_rep = DiagGaussian::new(low_mean, variance.clone());
    let high_rep = DiagGaussian::new(high_mean, variance);

    let mut low = Vec::new();
    let mut high = Vec::new();
    for &i in &group {
        let to_low = kl_diag_gaussian(&components[i].gaussian, &low_rep)
            <= kl_diag_gaussian(&components[i].gaussian, &high_rep);
        if to_low {
            low.push(i);
        } else {
            high.push(i);
        }
    }
    // Degenerate assignment (all members identical): cut in half.
    if low.is_empty() || high.is_empty() {
        let mid = group.len() / 2;
        low = group[..mid].to_vec();
        high = group[mid..].to_vec();
    }
    split_group(components, low, capacity, out);
    split_group(components, high, capacity, out);
}

/// Merges groups smaller than `min_size` into the KL-closest other group with
/// room, as long as such a group exists.
fn merge_small_groups(
    components: &[Component],
    groups: &mut Vec<Vec<usize>>,
    capacity: usize,
    min_size: usize,
) {
    loop {
        let Some(small_idx) = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.len() < min_size)
            .min_by_key(|(_, g)| g.len())
            .map(|(i, _)| i)
        else {
            return;
        };
        if groups.len() <= 1 {
            return;
        }
        let (small_mean, small_var) = moment_match(components, &groups[small_idx]);
        let small_gaussian = DiagGaussian::new(small_mean, small_var);
        let mut best: Option<(usize, f64)> = None;
        for (j, g) in groups.iter().enumerate() {
            if j == small_idx || g.len() + groups[small_idx].len() > capacity {
                continue;
            }
            let (m, v) = moment_match(components, g);
            let kl = kl_diag_gaussian(&small_gaussian, &DiagGaussian::new(m, v));
            if best.is_none_or(|(_, b)| kl < b) {
                best = Some((j, kl));
            }
        }
        let Some((target, _)) = best else {
            // Nothing has room: leave the small group as is.
            return;
        };
        let small = groups.remove(small_idx);
        let target = if target > small_idx {
            target - 1
        } else {
            target
        };
        groups[target].extend(small);
    }
}

/// Weight-respecting moment matching of a set of components.
fn moment_match(components: &[Component], group: &[usize]) -> (Vec<f64>, Vec<f64>) {
    let dims = components[group[0]].gaussian.dims();
    let total: f64 = group.iter().map(|&i| components[i].weight).sum();
    let total = if total > 0.0 { total } else { 1.0 };
    let mut mean = vec![0.0; dims];
    for &i in group {
        for (m, g) in mean.iter_mut().zip(components[i].gaussian.mean()) {
            *m += components[i].weight * g;
        }
    }
    for m in &mut mean {
        *m /= total;
    }
    let mut var = vec![0.0; dims];
    for &i in group {
        let c = &components[i];
        for ((v, &m), (g_mean, g_var)) in var
            .iter_mut()
            .zip(&mean)
            .zip(c.gaussian.mean().iter().zip(c.gaussian.variance()))
        {
            let diff = g_mean - m;
            *v += c.weight * (g_var + diff * diff);
        }
    }
    for v in &mut var {
        *v = (*v / total).max(bt_stats::VARIANCE_FLOOR);
    }
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = (i % 3) as f64 * 30.0;
                (0..dims).map(|_| c + rng.random::<f64>() * 3.0).collect()
            })
            .collect()
    }

    #[test]
    fn goldberger_tree_is_valid_and_complete() {
        let pts = random_points(400, 3, 1);
        let tree = build_goldberger(
            &pts,
            3,
            PageGeometry::from_fanout(5, 10),
            &GoldbergerBulkConfig::default(),
        );
        assert_eq!(tree.len(), 400);
        tree.validate(true).expect("valid Goldberger tree");
    }

    #[test]
    fn leaf_capacity_is_respected() {
        let pts = random_points(300, 2, 2);
        let geometry = PageGeometry::from_fanout(4, 8);
        let tree = build_goldberger(&pts, 2, geometry, &GoldbergerBulkConfig::default());
        // validate() already checks leaf capacity; re-check the top level
        // fanout explicitly.
        assert!(tree.root_entries().len() <= geometry.max_fanout);
    }

    #[test]
    fn clustered_data_produces_tight_top_level_mbrs() {
        // Three well-separated clusters: the root entries should not all span
        // the whole data range.
        let pts = random_points(300, 2, 3);
        let tree = build_goldberger(
            &pts,
            2,
            PageGeometry::from_fanout(4, 12),
            &GoldbergerBulkConfig::default(),
        );
        let full_extent = 63.0; // roughly max coordinate
        let any_tight = tree
            .root_entries()
            .iter()
            .any(|e| e.mbr.extent(0) < full_extent * 0.75);
        assert!(
            any_tight,
            "expected at least one spatially confined root entry"
        );
    }

    #[test]
    fn partition_respects_capacity() {
        let pts = random_points(200, 2, 4);
        let components: Vec<Component> = pts
            .iter()
            .map(|p| Component {
                weight: 1.0 / 200.0,
                gaussian: DiagGaussian::new(p.clone(), vec![0.5, 0.5]),
            })
            .collect();
        let groups = goldberger_partition(&components, 16, 6, &GoldbergerBulkConfig::default());
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
        assert!(groups.iter().all(|g| g.len() <= 16));
    }

    #[test]
    fn tiny_input_single_group() {
        let components: Vec<Component> = (0..3)
            .map(|i| Component {
                weight: 1.0 / 3.0,
                gaussian: DiagGaussian::new(vec![i as f64], vec![1.0]),
            })
            .collect();
        let groups = goldberger_partition(&components, 8, 3, &GoldbergerBulkConfig::default());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn split_group_handles_identical_members() {
        let components: Vec<Component> = (0..10)
            .map(|_| Component {
                weight: 0.1,
                gaussian: DiagGaussian::new(vec![5.0, 5.0], vec![0.1, 0.1]),
            })
            .collect();
        let mut out = Vec::new();
        split_group(&components, (0..10).collect(), 4, &mut out);
        let total: usize = out.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
        assert!(out.iter().all(|g| g.len() <= 4));
    }
}
