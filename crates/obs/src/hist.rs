//! Log-bucketed histograms for quantities that span decades.
//!
//! Buckets are powers of two: a [`HistogramSpec`] fixes an exponent range
//! `[min_exp, max_exp)` and every bucket `i` in `1..=max_exp-min_exp`
//! covers `[2^(min_exp+i-1), 2^(min_exp+i))`.  Bucket `0` catches
//! everything below `2^min_exp` (including zero, negatives and NaN) and
//! the last bucket everything at or above `2^max_exp`.  The bucket of a
//! finite positive value is read straight off its IEEE-754 exponent bits —
//! no `log`, no division — so observation is branch + shift + one relaxed
//! `fetch_add`.
//!
//! Counts and per-bucket tallies are exact `u64`s, so merging histograms
//! is associative and commutative (property-tested in
//! `tests/merge_props.rs`); only the `sum` is a float accumulation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::registry::enabled;

/// The exponent range of a power-of-two-bucketed histogram.
///
/// Two histograms merge only if their specs match; the registry panics on
/// a spec mismatch at registration time so the conflict is caught early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSpec {
    /// Values below `2^min_exp` land in the underflow bucket.
    pub min_exp: i32,
    /// Values at or above `2^max_exp` land in the overflow bucket.
    pub max_exp: i32,
}

impl HistogramSpec {
    /// Latency in nanoseconds: `64 ns ..= 64 s` (31 log2 buckets).
    pub const LATENCY_NS: Self = Self::new(6, 36);

    /// Bound widths in the model's own scale — densities and log-space
    /// posteriors both live here: `2^-128 ..= 2^16`.
    pub const BOUND_WIDTH: Self = Self::new(-128, 16);

    /// Small whole-number budgets (refinement rounds, node reads):
    /// `1 ..= 65536`.
    pub const BUDGET: Self = Self::new(0, 16);

    /// A spec covering `[2^min_exp, 2^max_exp)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or outside the normal-f64 exponent
    /// range.
    #[must_use]
    pub const fn new(min_exp: i32, max_exp: i32) -> Self {
        assert!(min_exp < max_exp, "histogram exponent range is empty");
        assert!(
            -1022 <= min_exp && max_exp <= 1023,
            "exponent out of f64 range"
        );
        Self { min_exp, max_exp }
    }

    /// Total number of buckets, including underflow and overflow.
    #[must_use]
    pub const fn buckets(self) -> usize {
        (self.max_exp - self.min_exp) as usize + 2
    }

    /// The bucket index `value` falls into.
    #[must_use]
    pub fn bucket_of(self, value: f64) -> usize {
        if value.is_nan() || value <= 0.0 {
            return 0; // zero, negative, NaN
        }
        if value == f64::INFINITY {
            return self.buckets() - 1;
        }
        // Exponent straight from the IEEE-754 bits; subnormals read as
        // -1023 which clamps into the underflow bucket below.
        let exp = ((value.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        if exp < self.min_exp {
            0
        } else if exp >= self.max_exp {
            self.buckets() - 1
        } else {
            (exp - self.min_exp + 1) as usize
        }
    }

    /// The inclusive upper bound of `bucket` (Prometheus `le` label);
    /// `+Inf` for the overflow bucket.
    #[must_use]
    pub fn upper_bound(self, bucket: usize) -> f64 {
        if bucket + 1 >= self.buckets() {
            f64::INFINITY
        } else {
            // Bucket i < overflow is bounded above by 2^(min_exp + i).
            (self.min_exp + bucket as i32).exp2()
        }
    }
}

/// Extension trait so `upper_bound` can stay integer-exact for exponents.
trait Exp2 {
    fn exp2(self) -> f64;
}

impl Exp2 for i32 {
    fn exp2(self) -> f64 {
        f64::from_bits(((self + 1023) as u64) << 52)
    }
}

#[derive(Debug)]
struct HistogramCore {
    spec: HistogramSpec,
    count: AtomicU64,
    /// Sum of observed values, stored as f64 bits and merged by CAS.
    sum_bits: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

/// A shared, lock-free histogram.  Clones share the same cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// An empty histogram with the given bucket spec.
    #[must_use]
    pub fn new(spec: HistogramSpec) -> Self {
        let buckets = (0..spec.buckets()).map(|_| AtomicU64::new(0)).collect();
        Self {
            core: Arc::new(HistogramCore {
                spec,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
                buckets,
            }),
        }
    }

    /// This histogram's bucket spec.
    #[must_use]
    pub fn spec(&self) -> HistogramSpec {
        self.core.spec
    }

    /// Records one observation (no-op while recording is disabled).
    pub fn observe(&self, value: f64) {
        if !enabled() {
            return;
        }
        let bucket = self.core.spec.bucket_of(value);
        self.core.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.add_sum(value);
    }

    /// Merges a locally-buffered histogram in: one `fetch_add` per
    /// non-empty bucket plus the count and sum (no-op while disabled, or
    /// when the specs differ).
    pub fn merge_local(&self, local: &LocalHistogram) {
        if !enabled() || local.count == 0 || local.spec != self.core.spec {
            return;
        }
        for (cell, &n) in self.core.buckets.iter().zip(&local.buckets) {
            if n > 0 {
                cell.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.core.count.fetch_add(local.count, Ordering::Relaxed);
        self.add_sum(local.sum);
    }

    fn add_sum(&self, value: f64) {
        if value == 0.0 {
            return;
        }
        let cell = &self.core.sum_bits;
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// A copy of the per-bucket tallies (underflow first, overflow last).
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.core
            .buckets
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// An unsynchronised histogram mirror for per-shard/per-worker buffering;
/// merged into the shared [`Histogram`] at batch/query boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalHistogram {
    spec: HistogramSpec,
    count: u64,
    sum: f64,
    buckets: Vec<u64>,
}

impl LocalHistogram {
    /// An empty local histogram with the given spec.
    #[must_use]
    pub fn new(spec: HistogramSpec) -> Self {
        Self {
            spec,
            count: 0,
            sum: 0.0,
            buckets: vec![0; spec.buckets()],
        }
    }

    /// This histogram's bucket spec.
    #[must_use]
    pub fn spec(&self) -> HistogramSpec {
        self.spec
    }

    /// Records one observation (plain adds, no atomics).
    pub fn observe(&mut self, value: f64) {
        self.buckets[self.spec.bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Folds `other` in bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics if the specs differ.
    pub fn merge(&mut self, other: &LocalHistogram) {
        assert_eq!(
            self.spec, other.spec,
            "merging histograms with different specs"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The per-bucket tallies (underflow first, overflow last).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Whether nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Resets every tally to zero, keeping the spec.
    pub fn clear(&mut self) {
        self.count = 0;
        self.sum = 0.0;
        self.buckets.iter_mut().for_each(|b| *b = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_reads_the_exponent() {
        let spec = HistogramSpec::new(0, 4); // buckets: <1, [1,2), [2,4), [4,8), [8,16), >=16
        assert_eq!(spec.buckets(), 6);
        assert_eq!(spec.bucket_of(0.0), 0);
        assert_eq!(spec.bucket_of(-3.0), 0);
        assert_eq!(spec.bucket_of(f64::NAN), 0);
        assert_eq!(spec.bucket_of(0.5), 0);
        assert_eq!(spec.bucket_of(1.0), 1);
        assert_eq!(spec.bucket_of(1.99), 1);
        assert_eq!(spec.bucket_of(2.0), 2);
        assert_eq!(spec.bucket_of(7.5), 3);
        assert_eq!(spec.bucket_of(15.0), 4);
        assert_eq!(spec.bucket_of(16.0), 5);
        assert_eq!(spec.bucket_of(f64::INFINITY), 5);
    }

    #[test]
    fn upper_bounds_are_powers_of_two() {
        let spec = HistogramSpec::new(0, 4);
        assert_eq!(spec.upper_bound(0), 1.0);
        assert_eq!(spec.upper_bound(1), 2.0);
        assert_eq!(spec.upper_bound(4), 16.0);
        assert_eq!(spec.upper_bound(5), f64::INFINITY);
        // Negative exponents are exact too.
        let tiny = HistogramSpec::new(-8, 0);
        assert_eq!(tiny.upper_bound(0), 0.00390625);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn shared_and_local_histograms_agree() {
        let _guard = crate::registry::test_lock();
        let spec = HistogramSpec::LATENCY_NS;
        let shared = Histogram::new(spec);
        let mut local = LocalHistogram::new(spec);
        for v in [100.0, 1e6, 3.0, 1e12] {
            shared.observe(v);
            local.observe(v);
        }
        assert_eq!(shared.count(), 4);
        assert_eq!(shared.bucket_counts(), local.bucket_counts());
        assert_eq!(shared.sum(), local.sum());
    }
}
