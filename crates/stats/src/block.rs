//! Structure-of-arrays summary blocks: dimension-major columns over one
//! node's entries, so the hot kernels evaluate a whole node in one pass.
//!
//! The anytime engines spend their time scoring the entries of one directory
//! node against one point: per-entry Gaussian log-kernels, squared distances
//! and MBR bound kernels.  Stored entry-major (`Vec<f64>` per summary) those
//! evaluations are one scattered dot product per entry.  A [`SummaryBlock`]
//! regathers the node into **dimension-major columns** — for a node of `n`
//! entries over `d` dimensions, column value `(dim, entry)` lives at index
//! `dim * n + entry` — so the batch kernels in [`crate::kernel`]
//! ([`crate::kernel::gaussian_log_terms_block`],
//! [`crate::kernel::sq_dists_block`],
//! [`crate::kernel::nearest_point_log_kernels_block`], …) stream each
//! column once, hoist the per-dimension constants (floored bandwidth, its
//! log) out of the entry loop, and accumulate all `n` results in
//! autovectorizable inner loops.
//!
//! **Precision.** Columns store `f64` by default.  The opt-in
//! [`BlockPrecision::F32`] mode halves the memory bandwidth of every column
//! stream; values are widened back to `f64` element by element before any
//! arithmetic, so **accumulation is always scalar `f64`** — only the stored
//! operands are quantised.  The entry-major scalar path remains the
//! property-tested reference (see `crates/stats/tests/block_kernels.rs`):
//! `f64` columns reproduce it bit for bit, `f32` columns within the
//! quantisation tolerance documented there.
//!
//! A block is plain reusable scratch: gather a node with [`SummaryBlock::
//! reset`] + the `set_*` writers, evaluate, reuse for the next node.  The
//! per-entry values can be read back out ([`SummaryBlock::entry_mean_into`]
//! and friends), so the block is convertible in both directions.

/// Storage precision of a block's value columns.
///
/// Weights and all kernel outputs stay `f64` in either mode; `F32` only
/// narrows the stored mean / variance / box columns (2× memory bandwidth on
/// the column streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BlockPrecision {
    /// Full-precision columns — bit-identical to the scalar reference.
    #[default]
    F64,
    /// Narrowed columns — operands quantised to `f32` at gather time,
    /// widened to `f64` before every arithmetic operation.
    F32,
}

/// An element type a column (or a stored summary) may hold; widened to `f64`
/// before arithmetic.
///
/// Besides the round-to-nearest [`ColumnElement::narrow`] used for plain
/// value storage, the trait provides the two *directed* quantisations the
/// stored-precision summaries need for interval soundness: a quantised MBR
/// must **enclose** the exact box, so lower corners round toward `-∞`
/// ([`ColumnElement::narrow_down`]) and upper corners toward `+∞`
/// ([`ColumnElement::narrow_up`]).  For `f64` all three are the identity, so
/// full-precision storage is bit-identical by construction.
pub trait ColumnElement: Copy {
    /// The [`BlockPrecision`] tag matching this storage type.
    const PRECISION: BlockPrecision;
    /// The value as `f64`.
    fn widen(self) -> f64;
    /// Quantises an `f64` into this storage type (round to nearest).
    fn narrow(v: f64) -> Self;
    /// Quantises rounding toward `-∞`: the result, widened back, is `<= v`.
    fn narrow_down(v: f64) -> Self;
    /// Quantises rounding toward `+∞`: the result, widened back, is `>= v`.
    fn narrow_up(v: f64) -> Self;
}

impl ColumnElement for f64 {
    const PRECISION: BlockPrecision = BlockPrecision::F64;
    #[inline(always)]
    fn widen(self) -> f64 {
        self
    }
    #[inline(always)]
    fn narrow(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn narrow_down(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn narrow_up(v: f64) -> Self {
        v
    }
}

impl ColumnElement for f32 {
    const PRECISION: BlockPrecision = BlockPrecision::F32;
    #[inline(always)]
    fn widen(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn narrow(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn narrow_down(v: f64) -> Self {
        let r = v as f32;
        if f64::from(r) > v {
            r.next_down()
        } else {
            r
        }
    }
    #[inline(always)]
    fn narrow_up(v: f64) -> Self {
        let r = v as f32;
        if f64::from(r) < v {
            r.next_up()
        } else {
            r
        }
    }
}

/// One dimension-major column group, stored at the block's precision.
///
/// Logical index `(dim, entry)` maps to flat index `dim * len + entry`,
/// where `len` is the number of entries in the block.
#[derive(Debug, Clone)]
pub enum Columns {
    /// Full-precision storage.
    F64(Vec<f64>),
    /// Narrowed storage (widened to `f64` before arithmetic).
    F32(Vec<f32>),
}

impl Default for Columns {
    fn default() -> Self {
        Columns::F64(Vec::new())
    }
}

impl Columns {
    fn with_precision(precision: BlockPrecision) -> Self {
        match precision {
            BlockPrecision::F64 => Columns::F64(Vec::new()),
            BlockPrecision::F32 => Columns::F32(Vec::new()),
        }
    }

    /// Switches the storage precision, clearing the values if it changes.
    pub fn set_precision(&mut self, precision: BlockPrecision) {
        if self.precision() != precision {
            *self = Self::with_precision(precision);
        }
    }

    /// Clears and zero-fills the columns to `n` values.
    pub fn reset(&mut self, n: usize) {
        match self {
            Columns::F64(v) => {
                v.clear();
                v.resize(n, 0.0);
            }
            Columns::F32(v) => {
                v.clear();
                v.resize(n, 0.0);
            }
        }
    }

    /// Number of stored values.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Columns::F64(v) => v.len(),
            Columns::F32(v) => v.len(),
        }
    }

    /// Whether no values are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stores `value` at flat index `idx` (quantising in `F32` mode).
    #[inline]
    pub fn set(&mut self, idx: usize, value: f64) {
        match self {
            Columns::F64(v) => v[idx] = value,
            Columns::F32(v) => v[idx] = value as f32,
        }
    }

    /// Reads the value at flat index `idx`, widened to `f64`.
    #[inline]
    #[must_use]
    pub fn get(&self, idx: usize) -> f64 {
        match self {
            Columns::F64(v) => v[idx],
            Columns::F32(v) => f64::from(v[idx]),
        }
    }

    /// The storage precision of these columns.
    #[must_use]
    pub fn precision(&self) -> BlockPrecision {
        match self {
            Columns::F64(_) => BlockPrecision::F64,
            Columns::F32(_) => BlockPrecision::F32,
        }
    }

    /// The raw `f64` storage, or `None` in `F32` mode — used by consumers
    /// that require full-precision slices (e.g. bit-exact routing).
    #[must_use]
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Columns::F64(v) => Some(v),
            Columns::F32(_) => None,
        }
    }
}

/// A structure-of-arrays gather of one node's entry summaries: per-entry
/// weights plus dimension-major mean / variance columns and (optionally)
/// MBR lower / upper columns.
///
/// See the [module docs](crate::block) for the layout and precision story.
#[derive(Debug, Clone, Default)]
pub struct SummaryBlock {
    len: usize,
    dims: usize,
    weight: Vec<f64>,
    mean: Columns,
    var: Columns,
    /// Precomputed `ln` of each (widened) variance column value, filled on
    /// demand by [`Self::fill_log_vars`]; empty until then.  Always `f64`:
    /// it caches the *result* of the transcendental, not an operand.
    log_var: Vec<f64>,
    lower: Columns,
    upper: Columns,
    has_boxes: bool,
}

impl SummaryBlock {
    /// An empty full-precision block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty block storing its columns at `precision`.
    #[must_use]
    pub fn with_precision(precision: BlockPrecision) -> Self {
        Self {
            len: 0,
            dims: 0,
            weight: Vec::new(),
            mean: Columns::with_precision(precision),
            var: Columns::with_precision(precision),
            log_var: Vec::new(),
            lower: Columns::with_precision(precision),
            upper: Columns::with_precision(precision),
            has_boxes: false,
        }
    }

    /// The precision new columns are stored at.
    #[must_use]
    pub fn precision(&self) -> BlockPrecision {
        self.mean.precision()
    }

    /// Switches the column precision (clearing any gathered data).
    pub fn set_precision(&mut self, precision: BlockPrecision) {
        if self.precision() != precision {
            *self = Self::with_precision(precision);
        }
    }

    /// Clears the block and sizes it for `len` entries over `dims`
    /// dimensions (weights and mean / variance columns zero-filled, box
    /// columns disabled until [`Self::enable_boxes`]).
    pub fn reset(&mut self, dims: usize, len: usize) {
        self.dims = dims;
        self.len = len;
        self.weight.clear();
        self.weight.resize(len, 0.0);
        self.mean.reset(dims * len);
        self.var.reset(dims * len);
        self.log_var.clear();
        self.lower.reset(0);
        self.upper.reset(0);
        self.has_boxes = false;
    }

    /// Enables the MBR lower / upper columns (zero-filled) for the current
    /// shape.
    pub fn enable_boxes(&mut self) {
        self.lower.reset(self.dims * self.len);
        self.upper.reset(self.dims * self.len);
        self.has_boxes = true;
    }

    /// Number of gathered entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the gathered summaries.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Whether the MBR columns are gathered.
    #[must_use]
    pub fn has_boxes(&self) -> bool {
        self.has_boxes
    }

    /// Flat column index of `(dim, entry)`.
    #[inline]
    #[must_use]
    pub fn col(&self, dim: usize, entry: usize) -> usize {
        dim * self.len + entry
    }

    /// Sets entry `i`'s weight.
    #[inline]
    pub fn set_weight(&mut self, i: usize, w: f64) {
        self.weight[i] = w;
    }

    /// Per-entry weights (always `f64`).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weight
    }

    /// Sets the mean of entry `i` along `dim`.
    #[inline]
    pub fn set_mean(&mut self, dim: usize, i: usize, v: f64) {
        let idx = self.col(dim, i);
        self.mean.set(idx, v);
    }

    /// Sets the variance of entry `i` along `dim` (and drops any
    /// previously filled log-variance column, which it would stale).
    #[inline]
    pub fn set_var(&mut self, dim: usize, i: usize, v: f64) {
        let idx = self.col(dim, i);
        self.var.set(idx, v);
        self.log_var.clear();
    }

    /// Sets the box lower bound of entry `i` along `dim`.
    #[inline]
    pub fn set_lower(&mut self, dim: usize, i: usize, v: f64) {
        let idx = self.col(dim, i);
        self.lower.set(idx, v);
    }

    /// Sets the box upper bound of entry `i` along `dim`.
    #[inline]
    pub fn set_upper(&mut self, dim: usize, i: usize, v: f64) {
        let idx = self.col(dim, i);
        self.upper.set(idx, v);
    }

    /// The dimension-major mean columns.
    #[must_use]
    pub fn mean(&self) -> &Columns {
        &self.mean
    }

    /// The dimension-major variance columns.
    #[must_use]
    pub fn var(&self) -> &Columns {
        &self.var
    }

    /// Precomputes the log-variance column: `ln` of every variance value,
    /// read back widened — so in `F32` mode it is the `ln` of the quantised
    /// operand, exactly what the scoring loop would compute per call.
    ///
    /// `ln(var)` is query-independent, so hoisting it to gather time (where
    /// the result rides along in the per-node block cache) removes the only
    /// transcendental from `kernel::diag_log_pdfs_block`'s inner loop and
    /// unlocks its SIMD path.  Call after *all* variances are set; any later
    /// [`Self::set_var`] drops the column again.
    pub fn fill_log_vars(&mut self) {
        let n = self.dims * self.len;
        self.log_var.clear();
        self.log_var.reserve(n);
        for idx in 0..n {
            self.log_var.push(self.var.get(idx).ln());
        }
    }

    /// The dimension-major log-variance column, or `None` until
    /// [`Self::fill_log_vars`] ran for the current variances.
    #[must_use]
    pub fn log_vars(&self) -> Option<&[f64]> {
        (self.log_var.len() == self.dims * self.len).then_some(&self.log_var[..])
    }

    /// The dimension-major box lower-bound columns.
    #[must_use]
    pub fn lower(&self) -> &Columns {
        &self.lower
    }

    /// The dimension-major box upper-bound columns.
    #[must_use]
    pub fn upper(&self) -> &Columns {
        &self.upper
    }

    /// Reads entry `i`'s mean back out (entry-major) — the inverse of the
    /// gather, used by round-trip tests.
    pub fn entry_mean_into(&self, i: usize, out: &mut Vec<f64>) {
        out.clear();
        for d in 0..self.dims {
            out.push(self.mean.get(self.col(d, i)));
        }
    }

    /// Reads entry `i`'s variance back out (entry-major).
    pub fn entry_var_into(&self, i: usize, out: &mut Vec<f64>) {
        out.clear();
        for d in 0..self.dims {
            out.push(self.var.get(self.col(d, i)));
        }
    }

    /// Reads entry `i`'s box back out as `(lower, upper)` (entry-major).
    pub fn entry_box_into(&self, i: usize, lower: &mut Vec<f64>, upper: &mut Vec<f64>) {
        lower.clear();
        upper.clear();
        for d in 0..self.dims {
            lower.push(self.lower.get(self.col(d, i)));
            upper.push(self.upper.get(self.col(d, i)));
        }
    }
}

/// Everything one gather of a node produces: the [`SummaryBlock`] columns
/// plus the dimension-major routing-centre columns, for models whose
/// geometric priority uses a centre whose rounding differs from the block's
/// Gaussian mean (e.g. `ls * (1/n)` versus `ls / n`).
///
/// This is the unit the per-node block cache stores: one `GatheredBlock`
/// behind an `Arc` serves scoring *and* routing for as long as the node's
/// version stamp is unchanged.
#[derive(Debug, Clone, Default)]
pub struct GatheredBlock {
    /// The gathered column block (weights, means, variances, boxes).
    pub block: SummaryBlock,
    /// Dimension-major routing-centre columns (flat index `dim * len +
    /// entry`); empty when the model routes by box or mean.
    pub centers: Columns,
}

impl GatheredBlock {
    /// An empty gather at full column precision.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty gather storing its columns at `precision`.
    #[must_use]
    pub fn with_precision(precision: BlockPrecision) -> Self {
        Self {
            block: SummaryBlock::with_precision(precision),
            centers: Columns::with_precision(precision),
        }
    }
}

/// One cached gather of one node, stamped with the node's mutation epoch.
///
/// The stamp *is* the invalidation signal: a consumer compares
/// [`CachedBlock::version`] against the node's current version stamp and a
/// mismatch means the node has mutated since the gather — the block is
/// simply ignored (and overwritten by the next store).  Copy-on-write keeps
/// old blocks valid for old snapshots, so no flags or epochs-of-death are
/// needed.
#[derive(Debug, Clone)]
pub struct CachedBlock {
    /// The node version stamp the gather was taken at.
    pub version: u64,
    /// Whether the block carries a full scoring gather (weights, means,
    /// variances).  Routing-only blocks — maintained incrementally by the
    /// insertion descent, which only knows the geometry — set this `false`
    /// so queries never consume them.
    pub scored: bool,
    /// The gathered columns.
    pub gathered: GatheredBlock,
}

/// A per-node cache slot holding at most one [`CachedBlock`].
///
/// Stored page-side next to the node's version stamp and `Arc`-shared with
/// snapshots, so pinned readers reuse warm blocks for free.  The slot is a
/// single-value replacement cache behind a `Mutex`: lookups clone the `Arc`
/// out (shared readers never block each other for long), stores replace
/// whatever is held.  Owners with `&mut` access (the insertion descent) use
/// the `_owned` accessors, which skip the lock entirely.
#[derive(Debug, Default)]
pub struct BlockCacheSlot {
    slot: std::sync::Mutex<Option<std::sync::Arc<CachedBlock>>>,
}

impl BlockCacheSlot {
    /// An empty slot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared-read lookup of a **scored** block taken at `version` whose
    /// columns are stored at `precision`.  Anything else — stale stamp,
    /// routing-only block, precision mismatch — is a miss.
    #[must_use]
    pub fn lookup_scored(
        &self,
        version: u64,
        precision: BlockPrecision,
    ) -> Option<std::sync::Arc<CachedBlock>> {
        let guard = self.slot.lock().ok()?;
        let cached = guard.as_ref()?;
        (cached.version == version
            && cached.scored
            && cached.gathered.block.precision() == precision)
            .then(|| std::sync::Arc::clone(cached))
    }

    /// Publishes `cached`, replacing whatever the slot held.
    pub fn store(&self, cached: std::sync::Arc<CachedBlock>) {
        if let Ok(mut guard) = self.slot.lock() {
            *guard = Some(cached);
        }
    }

    /// Empties the slot through the lock.
    pub fn clear(&self) {
        if let Ok(mut guard) = self.slot.lock() {
            *guard = None;
        }
    }

    /// Whatever the slot currently holds, regardless of version — test and
    /// introspection hook.
    #[must_use]
    pub fn peek(&self) -> Option<std::sync::Arc<CachedBlock>> {
        self.slot.lock().ok()?.clone()
    }

    /// Lock-free (owner) access to the held block **if** it was taken at
    /// `version`; `None` on empty or stale.
    pub fn get_at_owned(&mut self, version: u64) -> Option<&mut std::sync::Arc<CachedBlock>> {
        match self.slot.get_mut() {
            Ok(held) => held.as_mut().filter(|c| c.version == version),
            Err(_) => None,
        }
    }

    /// Lock-free (owner) store.
    pub fn store_owned(&mut self, cached: std::sync::Arc<CachedBlock>) {
        if let Ok(held) = self.slot.get_mut() {
            *held = Some(cached);
        }
    }

    /// Lock-free (owner) clear.
    pub fn clear_owned(&mut self) {
        if let Ok(held) = self.slot.get_mut() {
            *held = None;
        }
    }
}

/// Engine-owned scratch for block scoring: one [`GatheredBlock`] plus
/// reusable per-entry `f64` output lanes for the batch kernels (log-kernels,
/// bound kernels, squared distances — up to four concurrent results per
/// node).
#[derive(Debug, Clone, Default)]
pub struct BlockScratch {
    /// The gathered columns (block + routing centres).
    pub gathered: GatheredBlock,
    /// Reusable per-entry output buffers.
    pub lanes: [Vec<f64>; 4],
}

impl BlockScratch {
    /// An empty scratch at full column precision.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty scratch whose block stores columns at `precision`.
    #[must_use]
    pub fn with_precision(precision: BlockPrecision) -> Self {
        Self {
            gathered: GatheredBlock::with_precision(precision),
            lanes: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trips_entries() {
        let mut block = SummaryBlock::new();
        block.reset(2, 3);
        block.enable_boxes();
        for i in 0..3 {
            block.set_weight(i, i as f64 + 1.0);
            for d in 0..2 {
                block.set_mean(d, i, 10.0 * d as f64 + i as f64);
                block.set_var(d, i, 0.5 + i as f64);
                block.set_lower(d, i, -1.0 - d as f64);
                block.set_upper(d, i, 1.0 + i as f64);
            }
        }
        assert_eq!(block.weights(), &[1.0, 2.0, 3.0]);
        let mut mean = Vec::new();
        let mut var = Vec::new();
        block.entry_mean_into(1, &mut mean);
        block.entry_var_into(1, &mut var);
        assert_eq!(mean, vec![1.0, 11.0]);
        assert_eq!(var, vec![1.5, 1.5]);
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        block.entry_box_into(2, &mut lo, &mut hi);
        assert_eq!(lo, vec![-1.0, -2.0]);
        assert_eq!(hi, vec![3.0, 3.0]);
    }

    #[test]
    fn f32_mode_quantises_but_keeps_f64_reads() {
        let mut block = SummaryBlock::with_precision(BlockPrecision::F32);
        block.reset(1, 1);
        let v = 0.1f64;
        block.set_mean(0, 0, v);
        let got = block.mean().get(0);
        assert_eq!(got, f64::from(0.1f32));
        assert!((got - v).abs() < 1e-7);
    }

    #[test]
    fn cache_slot_hits_only_on_matching_scored_blocks() {
        use std::sync::Arc;
        let slot = BlockCacheSlot::new();
        assert!(slot.lookup_scored(3, BlockPrecision::F64).is_none());
        let mut gathered = GatheredBlock::new();
        gathered.block.reset(2, 4);
        slot.store(Arc::new(CachedBlock {
            version: 3,
            scored: true,
            gathered,
        }));
        assert!(slot.lookup_scored(3, BlockPrecision::F64).is_some());
        // Stale stamp, precision mismatch: both miss.
        assert!(slot.lookup_scored(4, BlockPrecision::F64).is_none());
        assert!(slot.lookup_scored(3, BlockPrecision::F32).is_none());
        // Routing-only blocks are never returned to scorers.
        slot.store(Arc::new(CachedBlock {
            version: 3,
            scored: false,
            gathered: GatheredBlock::new(),
        }));
        assert!(slot.lookup_scored(3, BlockPrecision::F64).is_none());
        assert!(slot.peek().is_some());
        slot.clear();
        assert!(slot.peek().is_none());
    }

    #[test]
    fn cache_slot_owner_accessors_skip_the_lock() {
        use std::sync::Arc;
        let mut slot = BlockCacheSlot::new();
        assert!(slot.get_at_owned(1).is_none());
        slot.store_owned(Arc::new(CachedBlock {
            version: 1,
            scored: false,
            gathered: GatheredBlock::new(),
        }));
        assert!(slot.get_at_owned(1).is_some());
        assert!(slot.get_at_owned(2).is_none());
        // Owner mutation through `Arc::make_mut` sticks.
        if let Some(held) = slot.get_at_owned(1) {
            Arc::make_mut(held).scored = true;
        }
        assert!(slot.lookup_scored(1, BlockPrecision::F64).is_some());
        slot.clear_owned();
        assert!(slot.peek().is_none());
    }

    #[test]
    fn log_var_column_tracks_the_variances() {
        let mut block = SummaryBlock::new();
        block.reset(2, 3);
        for i in 0..3 {
            for d in 0..2 {
                block.set_var(d, i, 0.5 + (d * 3 + i) as f64);
            }
        }
        assert!(block.log_vars().is_none(), "not filled yet");
        block.fill_log_vars();
        let lv = block.log_vars().expect("filled").to_vec();
        assert_eq!(lv.len(), 6);
        for (idx, &l) in lv.iter().enumerate() {
            assert_eq!(l.to_bits(), block.var().get(idx).ln().to_bits());
        }
        // Any variance write stales the column, so it is dropped.
        block.set_var(0, 0, 2.0);
        assert!(block.log_vars().is_none());
        // A reset drops it too.
        block.fill_log_vars();
        block.reset(2, 3);
        assert!(block.log_vars().is_none());
    }

    #[test]
    fn set_precision_switches_storage() {
        let mut block = SummaryBlock::new();
        assert_eq!(block.precision(), BlockPrecision::F64);
        block.set_precision(BlockPrecision::F32);
        assert_eq!(block.precision(), BlockPrecision::F32);
        block.reset(1, 2);
        assert_eq!(block.mean().precision(), BlockPrecision::F32);
    }
}
