//! End-to-end integration test of the anytime classification pipeline:
//! workload generation → stratified folds → per-class Bayes trees →
//! anytime accuracy curves, checking the qualitative claims of Section 3.2
//! at miniature scale.

use anytime_stream_mining::bayestree::BulkLoadMethod;
use anytime_stream_mining::data::synth::Benchmark;
use anytime_stream_mining::eval::curve::{anytime_accuracy_curve, figure_curves};
use anytime_stream_mining::eval::{improvement_summary, CurveConfig};
use anytime_stream_mining::index::PageGeometry;

fn fast_config() -> CurveConfig {
    CurveConfig {
        max_nodes: 20,
        folds: 3,
        seed: 7,
        geometry: Some(PageGeometry::from_fanout(6, 12)),
        max_test_queries: Some(40),
        ..CurveConfig::default()
    }
}

#[test]
fn pendigits_standin_reaches_high_accuracy() {
    let dataset = Benchmark::Pendigits.generate(1_200, 3);
    let curve = anytime_accuracy_curve(&dataset, BulkLoadMethod::EmTopDown, &fast_config());
    assert!(
        curve.peak() > 0.85,
        "peak accuracy only {:.3}: {:?}",
        curve.peak(),
        curve.accuracy
    );
    // The fully refined model stays in the same accuracy regime as the
    // root-level model (EM-built trees may dip slightly mid-descent, as the
    // paper also observes oscillation on some workloads).
    assert!(curve.at(20) + 0.15 >= curve.at(0));
}

#[test]
fn refinement_clearly_helps_the_iterative_baseline() {
    // For iteratively built trees the root-level model is poor and anytime
    // refinement must improve it substantially — the effect that motivates
    // the whole paper.
    let dataset = Benchmark::Pendigits.generate(1_200, 3);
    let curve = anytime_accuracy_curve(&dataset, BulkLoadMethod::Iterative, &fast_config());
    assert!(
        curve.at(20) > curve.at(0),
        "iterative curve did not rise: {:?}",
        curve.accuracy
    );
}

#[test]
fn letter_standin_is_harder_than_pendigits() {
    let config = fast_config();
    let pendigits = Benchmark::Pendigits.generate(1_200, 5);
    let letter = Benchmark::Letter.generate(1_560, 5);
    let acc_pend =
        anytime_accuracy_curve(&pendigits, BulkLoadMethod::EmTopDown, &config).final_accuracy;
    let acc_letter =
        anytime_accuracy_curve(&letter, BulkLoadMethod::EmTopDown, &config).final_accuracy;
    assert!(
        acc_letter < acc_pend,
        "letter {acc_letter:.3} should be harder than pendigits {acc_pend:.3}"
    );
}

#[test]
fn figure_curves_reproduce_the_bulk_loading_ordering() {
    // The paper's qualitative result: EMTopDown dominates the iterative
    // insertion in anytime accuracy (Figures 2 and 3).  At miniature scale we
    // assert it is at least as good on the mean of the curve.
    let dataset = Benchmark::Pendigits.generate(1_000, 11);
    let curves = figure_curves(&dataset, &fast_config());
    let em = curves.iter().find(|c| c.label == "EMTopDown").unwrap();
    let iterative = curves.iter().find(|c| c.label == "Iterativ").unwrap();
    assert!(
        em.mean() + 0.02 >= iterative.mean(),
        "EMTopDown mean {:.3} vs Iterativ mean {:.3}",
        em.mean(),
        iterative.mean()
    );
    let rows = improvement_summary("pendigits", iterative, &curves);
    assert_eq!(rows.len(), 3);
}

#[test]
fn covertype_standin_keeps_minority_classes_learnable() {
    let dataset = Benchmark::Covertype.generate(2_000, 13);
    let curve = anytime_accuracy_curve(&dataset, BulkLoadMethod::Hilbert, &fast_config());
    // The two majority classes alone cover ~85%; the classifier must do
    // meaningfully better than the majority-vote baseline of ~49%.
    assert!(
        curve.final_accuracy > 0.6,
        "accuracy {:.3}",
        curve.final_accuracy
    );
}
