//! Single-tree multi-class variant (Section 4.1).
//!
//! Instead of one Bayes tree per class, the complete training data is stored
//! in a *single* tree whose entries additionally record how many objects of
//! each class live in their subtree.  A single descent then refines the
//! models of several classes in parallel: every node read sharpens the
//! class-conditional density of every class present in that subtree.
//!
//! Following the "variance pooling" option discussed in the paper, an entry
//! stores one cluster feature over all objects of its subtree (so all classes
//! share the entry's Gaussian shape) plus a per-class object count that
//! splits the entry's weight across the classes.  Leaf observations keep
//! their individual labels, so a fully refined frontier is exactly the same
//! per-class kernel density model the per-class forest converges to.
//!
//! Like the plain Bayes tree and the clustering extension, the structure is
//! an instantiation of the shared [`bt_anytree`] core — here with a
//! label-aware payload ([`LabeledSummary`]) and `(point, label)` leaf items.

use crate::descent::{DescentStrategy, PriorityMeasure};
use bt_anytree::{AnytimeTree, InsertModel, Node, NodeKind, Summary};
use bt_data::Dataset;
use bt_index::rstar::rstar_split;
use bt_index::{Mbr, PageGeometry};
use bt_stats::bandwidth::silverman_bandwidth;
use bt_stats::kernel::{GaussianKernel, Kernel};
use bt_stats::ClusterFeature;

/// Arena index of a node in the single multi-class tree.
type McNodeId = bt_anytree::NodeId;

/// A labelled observation stored at leaf level.
type McPoint = (Vec<f64>, usize);

/// The single tree's payload: pooled MBR + CF plus per-class counts.
#[derive(Debug, Clone)]
struct LabeledSummary {
    mbr: Mbr,
    cf: ClusterFeature,
    class_counts: Vec<f64>,
}

impl LabeledSummary {
    fn absorb(&mut self, point: &[f64], label: usize) {
        self.mbr.extend_point(point);
        self.cf.insert(point);
        self.class_counts[label] += 1.0;
    }

    fn from_labeled_points(points: &[McPoint], dims: usize, num_classes: usize) -> Self {
        let mbr = Mbr::from_points(points.iter().map(|(p, _)| p.as_slice()))
            .expect("cannot summarise an empty node");
        let cf = ClusterFeature::from_points(points.iter().map(|(p, _)| p.as_slice()), dims);
        let mut class_counts = vec![0.0; num_classes];
        for (_, l) in points {
            class_counts[*l] += 1.0;
        }
        Self {
            mbr,
            cf,
            class_counts,
        }
    }
}

impl Summary for LabeledSummary {
    type Ctx = ();
    const MBR_ROUTED: bool = true;

    fn merge(&mut self, other: &Self, _ctx: ()) {
        self.mbr.extend_mbr(&other.mbr);
        self.cf.merge(&other.cf);
        for (acc, c) in self.class_counts.iter_mut().zip(&other.class_counts) {
            *acc += c;
        }
    }

    fn weight(&self) -> f64 {
        self.cf.weight()
    }

    fn sq_dist_to(&self, point: &[f64]) -> f64 {
        self.mbr.min_dist_sq(point)
    }

    fn center(&self) -> Vec<f64> {
        self.cf.mean()
    }

    fn as_mbr(&self) -> Option<&Mbr> {
        Some(&self.mbr)
    }
}

type McEntry = bt_anytree::Entry<LabeledSummary>;

/// The label-aware insertion policy over the shared core.
struct LabeledModel {
    dims: usize,
    num_classes: usize,
}

impl InsertModel<LabeledSummary> for LabeledModel {
    type Object = McPoint;
    type LeafItem = McPoint;

    fn ctx(&self) {}

    fn route_point<'a>(&self, obj: &'a McPoint, _scratch: &'a mut Vec<f64>) -> &'a [f64] {
        &obj.0
    }

    fn summary_of(&self, obj: &McPoint) -> LabeledSummary {
        let mut class_counts = vec![0.0; self.num_classes];
        class_counts[obj.1] = 1.0;
        LabeledSummary {
            mbr: Mbr::from_point(&obj.0),
            cf: ClusterFeature::from_point(&obj.0),
            class_counts,
        }
    }

    fn absorb_into(&self, summary: &mut LabeledSummary, obj: &McPoint) {
        summary.absorb(&obj.0, obj.1);
    }

    fn insert_into_leaf(&mut self, items: &mut Vec<McPoint>, obj: McPoint) {
        items.push(obj);
    }

    fn summarize_leaf_items(&self, items: &[McPoint]) -> LabeledSummary {
        LabeledSummary::from_labeled_points(items, self.dims, self.num_classes)
    }

    fn split_leaf_items(
        &self,
        items: Vec<McPoint>,
        geometry: &PageGeometry,
    ) -> (Vec<McPoint>, Vec<McPoint>) {
        let mbrs: Vec<Mbr> = items.iter().map(|(p, _)| Mbr::from_point(p)).collect();
        let min = geometry.min_leaf.min(items.len() / 2).max(1);
        let split = rstar_split(&mbrs, min);
        bt_anytree::distribute(items, &split.first, &split.second)
    }
}

/// Configuration of the single-tree classifier.
#[derive(Debug, Clone, Default)]
pub struct SingleTreeConfig {
    /// Fanout / leaf-capacity parameters; `None` derives them from a 4 KiB
    /// page.
    pub geometry: Option<PageGeometry>,
    /// Descent strategy for the single shared frontier.
    pub descent: DescentStrategy,
    /// Whether the descent priority additionally weighs an entry by the
    /// entropy of its class distribution (the paper's open question: "is it
    /// favorable to include the class distribution into the decision?").
    pub entropy_weighted_descent: bool,
}

/// The single-tree multi-class anytime classifier of Section 4.1.
#[derive(Debug, Clone)]
pub struct SingleTreeClassifier {
    core: AnytimeTree<LabeledSummary, McPoint>,
    num_classes: usize,
    class_totals: Vec<f64>,
    priors: Vec<f64>,
    bandwidth: Vec<f64>,
    config: SingleTreeConfig,
}

impl SingleTreeClassifier {
    /// Trains the classifier by iteratively inserting the whole data set into
    /// one shared tree (a batch size of 1 over
    /// [`Self::train_batched`] — observably the same construction).
    ///
    /// # Panics
    ///
    /// Panics if the data set is empty.
    #[must_use]
    pub fn train(dataset: &Dataset, config: &SingleTreeConfig) -> Self {
        Self::train_batched(dataset, config, 1)
    }

    /// Trains the classifier by inserting the data set in mini-batches of
    /// `batch_size` through the shared core's batched descent engine
    /// ([`bt_anytree::descent`]): each visited node refreshes its summaries
    /// once per batch and splits once after the batch drains.  A batch size
    /// of 1 builds exactly the tree [`Self::train`] builds.
    ///
    /// # Panics
    ///
    /// Panics if the data set is empty or `batch_size == 0`.
    #[must_use]
    pub fn train_batched(dataset: &Dataset, config: &SingleTreeConfig, batch_size: usize) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty data set");
        assert!(batch_size > 0, "batch size must be positive");
        let dims = dataset.dims();
        let geometry = config
            .geometry
            .unwrap_or_else(|| PageGeometry::default_for_dims(dims));
        let mut clf = Self {
            core: AnytimeTree::new(dims, geometry),
            num_classes: dataset.num_classes(),
            class_totals: vec![0.0; dataset.num_classes()],
            priors: dataset.class_priors(),
            bandwidth: silverman_bandwidth(dataset.features(), dims),
            config: config.clone(),
        };
        let n = dataset.len();
        let mut start = 0;
        while start < n {
            let end = (start + batch_size).min(n);
            let chunk: Vec<McPoint> = (start..end)
                .map(|i| (dataset.feature(i).to_vec(), dataset.label(i)))
                .collect();
            clf.insert_batch(chunk);
            start = end;
        }
        clf
    }

    /// Number of stored observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.class_totals.iter().sum::<f64>() as usize
    }

    /// Whether the classifier holds no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Inserts one labelled observation (online learning).
    ///
    /// # Panics
    ///
    /// Panics if the label is out of range or the point has the wrong
    /// dimensionality.
    pub fn insert(&mut self, point: Vec<f64>, label: usize) {
        assert!(label < self.num_classes, "label out of range");
        assert_eq!(
            point.len(),
            self.core.dims(),
            "point dimensionality mismatch"
        );
        let mut model = LabeledModel {
            dims: self.core.dims(),
            num_classes: self.num_classes,
        };
        let _ = self.core.insert(&mut model, (point, label), usize::MAX);
        self.class_totals[label] += 1.0;
        self.refresh_priors();
    }

    /// Inserts a mini-batch of labelled observations through the core's
    /// batched descent engine, sharing summary refreshes and split handling
    /// across the batch.
    ///
    /// # Panics
    ///
    /// Panics if any label is out of range or any point has the wrong
    /// dimensionality.
    pub fn insert_batch(&mut self, batch: Vec<(Vec<f64>, usize)>) {
        let dims = self.core.dims();
        assert!(
            batch.iter().all(|(p, _)| p.len() == dims),
            "point dimensionality mismatch"
        );
        assert!(
            batch.iter().all(|(_, l)| *l < self.num_classes),
            "label out of range"
        );
        let mut model = LabeledModel {
            dims,
            num_classes: self.num_classes,
        };
        for (_, label) in &batch {
            self.class_totals[*label] += 1.0;
        }
        let _ = self.core.insert_batch(&mut model, batch, usize::MAX);
        self.refresh_priors();
    }

    fn refresh_priors(&mut self) {
        let total: f64 = self.class_totals.iter().sum();
        for (p, &c) in self.priors.iter_mut().zip(&self.class_totals) {
            *p = c / total;
        }
    }

    /// Classifies `x` with a budget of `budget` node reads on the single
    /// shared frontier.
    #[must_use]
    pub fn classify_with_budget(&self, x: &[f64], budget: usize) -> crate::Classification {
        let labels = self.anytime_labels(x, budget, false);
        crate::Classification {
            label: labels.1,
            posteriors: labels.2,
            nodes_read: labels.0,
        }
    }

    /// The decision after every node read up to `max_nodes`.
    #[must_use]
    pub fn anytime_trace(&self, x: &[f64], max_nodes: usize) -> Vec<usize> {
        self.anytime_labels(x, max_nodes, true).3
    }

    fn anytime_labels(
        &self,
        x: &[f64],
        budget: usize,
        record: bool,
    ) -> (usize, usize, Vec<f64>, Vec<usize>) {
        assert_eq!(x.len(), self.core.dims(), "query dimensionality mismatch");
        let mut frontier = McFrontier::new(self, x);
        let mut trace = Vec::new();
        let mut posteriors = frontier.posteriors();
        if record {
            trace.push(argmax(&posteriors));
        }
        let mut reads = 0usize;
        for _ in 0..budget {
            if !frontier.refine() {
                break;
            }
            reads += 1;
            posteriors = frontier.posteriors();
            if record {
                trace.push(argmax(&posteriors));
            }
        }
        (reads, argmax(&posteriors), posteriors, trace)
    }

    fn node(&self, id: McNodeId) -> &Node<LabeledSummary, McPoint> {
        self.core.node(id)
    }

    /// The entry describing `child` (used for the synthetic root entry of a
    /// leaf-rooted tree).
    fn summarise(&self, child: McNodeId) -> McEntry {
        let model = LabeledModel {
            dims: self.core.dims(),
            num_classes: self.num_classes,
        };
        self.core.summarize_node(&model, child)
    }
}

/// One element of the shared multi-class frontier: per-class density
/// contributions plus the refinement metadata.
struct McElement {
    child: Option<McNodeId>,
    per_class: Vec<f64>,
    total_contribution: f64,
    entropy: f64,
    min_dist_sq: f64,
    depth: usize,
    seq: u64,
}

struct McFrontier<'a> {
    clf: &'a SingleTreeClassifier,
    query: Vec<f64>,
    elements: Vec<McElement>,
    per_class_density: Vec<f64>,
    next_seq: u64,
}

impl<'a> McFrontier<'a> {
    fn new(clf: &'a SingleTreeClassifier, query: &[f64]) -> Self {
        let mut f = Self {
            clf,
            query: query.to_vec(),
            elements: Vec::new(),
            per_class_density: vec![0.0; clf.num_classes],
            next_seq: 0,
        };
        let root = clf.core.root();
        match &clf.node(root).kind {
            NodeKind::Inner { entries } => {
                for entry in entries {
                    f.push_entry_value(entry, 1);
                }
            }
            NodeKind::Leaf { items } => {
                if !items.is_empty() {
                    // Synthetic root entry over the leaf root.
                    let entry = clf.summarise(root);
                    f.push_entry_value(&entry, 1);
                }
            }
        }
        f
    }

    fn posteriors(&self) -> Vec<f64> {
        let joint: Vec<f64> = self
            .per_class_density
            .iter()
            .zip(&self.clf.priors)
            .map(|(d, p)| d.max(0.0) * p)
            .collect();
        let total: f64 = joint.iter().sum();
        if total > 0.0 {
            joint.iter().map(|j| j / total).collect()
        } else {
            self.clf.priors.clone()
        }
    }

    fn refine(&mut self) -> bool {
        let Some(idx) = self.select() else {
            return false;
        };
        let element = self.elements.swap_remove(idx);
        for (acc, c) in self.per_class_density.iter_mut().zip(&element.per_class) {
            *acc -= c;
        }
        let child = element.child.expect("selected element is refinable");
        let depth = element.depth + 1;
        match &self.clf.node(child).kind {
            NodeKind::Inner { entries } => {
                for i in 0..entries.len() {
                    self.push_entry(child, i, depth);
                }
            }
            NodeKind::Leaf { items } => {
                for (p, l) in items {
                    self.push_kernel(p, *l, depth);
                }
            }
        }
        true
    }

    fn select(&self) -> Option<usize> {
        let refinable = self
            .elements
            .iter()
            .enumerate()
            .filter(|(_, e)| e.child.is_some());
        let entropy_weight = self.clf.config.entropy_weighted_descent;
        match self.clf.config.descent {
            DescentStrategy::BreadthFirst => refinable
                .min_by(|(_, a), (_, b)| a.depth.cmp(&b.depth).then(a.seq.cmp(&b.seq)))
                .map(|(i, _)| i),
            DescentStrategy::DepthFirst => refinable
                .max_by(|(_, a), (_, b)| a.depth.cmp(&b.depth).then(a.seq.cmp(&b.seq)))
                .map(|(i, _)| i),
            DescentStrategy::GlobalBest(PriorityMeasure::Geometric) => refinable
                .min_by(|(_, a), (_, b)| {
                    a.min_dist_sq
                        .partial_cmp(&b.min_dist_sq)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i),
            DescentStrategy::GlobalBest(PriorityMeasure::Probabilistic) => refinable
                .max_by(|(_, a), (_, b)| {
                    let pa =
                        a.total_contribution * if entropy_weight { 1.0 + a.entropy } else { 1.0 };
                    let pb =
                        b.total_contribution * if entropy_weight { 1.0 + b.entropy } else { 1.0 };
                    pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i),
        }
    }

    fn push_entry(&mut self, node: McNodeId, entry_idx: usize, depth: usize) {
        let NodeKind::Inner { entries } = &self.clf.node(node).kind else {
            unreachable!("push_entry called for a leaf node");
        };
        let entry = entries[entry_idx].clone();
        self.push_entry_value(&entry, depth);
    }

    fn push_entry_value(&mut self, entry: &McEntry, depth: usize) {
        let gaussian = entry.cf.to_gaussian();
        let g = gaussian.pdf(&self.query);
        let per_class: Vec<f64> = entry
            .class_counts
            .iter()
            .zip(&self.clf.class_totals)
            .map(|(count, total)| if *total > 0.0 { count / total * g } else { 0.0 })
            .collect();
        let total_contribution: f64 = per_class
            .iter()
            .zip(&self.clf.priors)
            .map(|(d, p)| d * p)
            .sum();
        for (acc, c) in self.per_class_density.iter_mut().zip(&per_class) {
            *acc += c;
        }
        let entropy = class_entropy(&entry.class_counts);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.elements.push(McElement {
            child: Some(entry.child),
            per_class,
            total_contribution,
            entropy,
            min_dist_sq: entry.mbr.min_dist_sq(&self.query),
            depth,
            seq,
        });
    }

    fn push_kernel(&mut self, point: &[f64], label: usize, depth: usize) {
        let kernel = GaussianKernel;
        let density = kernel.density(point, &self.query, &self.clf.bandwidth);
        let mut per_class = vec![0.0; self.clf.num_classes];
        if self.clf.class_totals[label] > 0.0 {
            per_class[label] = density / self.clf.class_totals[label];
        }
        let total_contribution = per_class[label] * self.clf.priors[label];
        self.per_class_density[label] += per_class[label];
        let min_dist_sq: f64 = point
            .iter()
            .zip(&self.query)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.elements.push(McElement {
            child: None,
            per_class,
            total_contribution,
            entropy: 0.0,
            min_dist_sq,
            depth,
            seq,
        });
    }
}

/// Shannon entropy (in nats) of a count vector, used by the
/// entropy-weighted descent option.
fn class_entropy(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / total;
            -p * p.ln()
        })
        .sum()
}

fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_data::synth::blobs::BlobConfig;

    fn dataset() -> Dataset {
        BlobConfig::new(3, 4)
            .samples_per_class(70)
            .seed(21)
            .generate()
    }

    #[test]
    fn training_stores_every_observation() {
        let data = dataset();
        let clf = SingleTreeClassifier::train(&data, &SingleTreeConfig::default());
        assert_eq!(clf.len(), data.len());
        assert_eq!(clf.num_classes(), 3);
    }

    #[test]
    fn classification_is_accurate_on_easy_data() {
        let data = dataset();
        let (train, test) = data.split_holdout(0.3, 5);
        let clf = SingleTreeClassifier::train(&train, &SingleTreeConfig::default());
        let mut correct = 0;
        for (x, &y) in test.iter() {
            if clf.classify_with_budget(x, 20).label == y {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn posteriors_are_normalised() {
        let data = dataset();
        let clf = SingleTreeClassifier::train(&data, &SingleTreeConfig::default());
        let c = clf.classify_with_budget(data.feature(0), 10);
        let sum: f64 = c.posteriors.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trace_starts_at_root_model() {
        let data = dataset();
        let clf = SingleTreeClassifier::train(&data, &SingleTreeConfig::default());
        let trace = clf.anytime_trace(data.feature(1), 12);
        assert!(!trace.is_empty());
        assert!(trace.len() <= 13);
    }

    #[test]
    fn entropy_weighted_descent_still_classifies() {
        let data = dataset();
        let (train, test) = data.split_holdout(0.3, 6);
        let config = SingleTreeConfig {
            entropy_weighted_descent: true,
            ..SingleTreeConfig::default()
        };
        let clf = SingleTreeClassifier::train(&train, &config);
        let mut correct = 0;
        for (x, &y) in test.iter() {
            if clf.classify_with_budget(x, 20).label == y {
                correct += 1;
            }
        }
        assert!(correct as f64 / test.len() as f64 > 0.8);
    }

    #[test]
    fn online_insert_updates_priors() {
        let data = dataset();
        let mut clf = SingleTreeClassifier::train(&data, &SingleTreeConfig::default());
        for _ in 0..50 {
            clf.insert(data.feature(0).to_vec(), 2);
        }
        assert!(clf.priors[2] > 1.0 / 3.0);
    }

    #[test]
    fn class_entropy_is_zero_for_pure_nodes() {
        assert_eq!(class_entropy(&[5.0, 0.0, 0.0]), 0.0);
        assert!(class_entropy(&[5.0, 5.0]) > 0.6);
    }

    #[test]
    fn batched_training_with_batch_size_one_matches_sequential() {
        let data = dataset();
        let sequential = SingleTreeClassifier::train(&data, &SingleTreeConfig::default());
        let batched = SingleTreeClassifier::train_batched(&data, &SingleTreeConfig::default(), 1);
        assert_eq!(sequential.len(), batched.len());
        for i in [0usize, 7, 19] {
            let a = sequential.classify_with_budget(data.feature(i), 15);
            let b = batched.classify_with_budget(data.feature(i), 15);
            assert_eq!(a.label, b.label);
            for (pa, pb) in a.posteriors.iter().zip(&b.posteriors) {
                assert!((pa - pb).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn batched_training_classifies_accurately() {
        let data = dataset();
        let (train, test) = data.split_holdout(0.3, 5);
        let clf = SingleTreeClassifier::train_batched(&train, &SingleTreeConfig::default(), 16);
        let mut correct = 0;
        for (x, &y) in test.iter() {
            if clf.classify_with_budget(x, 20).label == y {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn single_tree_converges_to_per_class_kernel_model() {
        // With an unbounded budget the single-tree frontier refines to the
        // exact per-class kernel densities, so the decision must match a
        // direct kernel-density classification.
        let data = dataset();
        let clf = SingleTreeClassifier::train(&data, &SingleTreeConfig::default());
        let c = clf.classify_with_budget(data.feature(5), usize::MAX);
        assert!(c.posteriors[c.label] >= 1.0 / 3.0 - 1e-9);
    }
}
