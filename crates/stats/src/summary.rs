//! Streaming summary statistics (Welford's online algorithm).
//!
//! Used for bandwidth selection, dataset normalization and the evaluation
//! harness; numerically stable even for long streams.

/// Online mean / variance accumulator over a stream of scalars.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations seen so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance of the observations (0 when fewer than two).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation seen (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation seen (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn single_observation_variance_is_zero() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }
}
