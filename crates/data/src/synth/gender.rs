//! Synthetic stand-in for the PDMC *Gender* data set.
//!
//! Original: 189 961 physiological sensor records from the Physiological Data
//! Modeling Contest (ICML 2004), 9 features, 2 classes (Table 1).  Binary,
//! large, and with substantial class overlap: the paper reports 60–85 %
//! anytime accuracy on it (Figure 4, top).
//!
//! The stand-in uses four clusters per class (different activity regimes) and
//! a mild class imbalance, with strongly overlapping classes.

use crate::dataset::Dataset;
use crate::synth::{ClassMixtureConfig, DatasetSpec};

/// The Table 1 row for Gender.
#[must_use]
pub fn spec() -> DatasetSpec {
    DatasetSpec {
        name: "Gender",
        size: 189_961,
        classes: 2,
        features: 9,
        reference: "PDMC / Stone & Andre [19]",
    }
}

/// Generates a Gender-like data set with `samples` observations.
#[must_use]
pub fn generate(samples: usize, seed: u64) -> Dataset {
    let spec = spec();
    let mut config = ClassMixtureConfig::new(spec.name, spec.classes, spec.features);
    config.clusters_per_class = 5;
    config.class_weights = vec![0.55, 0.45];
    config.separation = 8.0;
    config.spread = 2.8;
    config.curvature = 1.0;
    config.seed = seed;
    config.generate(samples)
}

/// Generates the full-size stand-in (189 961 observations).
#[must_use]
pub fn generate_full(seed: u64) -> Dataset {
    generate(spec().size, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table1_shape() {
        let ds = generate(2_000, 7);
        assert_eq!(ds.dims(), 9);
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.len(), 2_000);
    }

    #[test]
    fn classes_are_mildly_imbalanced() {
        let ds = generate(2_000, 7);
        let counts = ds.class_counts();
        assert!(counts[0] > counts[1]);
        let ratio = counts[0] as f64 / ds.len() as f64;
        assert!((0.50..0.60).contains(&ratio), "majority ratio {ratio}");
    }

    #[test]
    fn problem_is_hard_but_learnable() {
        let ds = generate(4_000, 11);
        let acc = crate::synth::test_util::knn_holdout_accuracy(&ds);
        assert!(acc > 0.55 && acc < 0.999, "accuracy {acc}");
    }
}
