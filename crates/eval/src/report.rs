//! Report formatting: Table 1, CSV export, ASCII charts and the improvement
//! summary behind the paper's "up to 13 %" claim.

use crate::curve::AccuracyCurve;
use bt_data::synth::table1_specs;

/// Renders Table 1 (the data-set inventory) as aligned text.
#[must_use]
pub fn table1() -> String {
    let mut out = String::from(
        "name        size     classes  features  ref.\n\
         ----------  -------  -------  --------  ----------------------\n",
    );
    for spec in table1_specs() {
        out.push_str(&format!(
            "{:<10}  {:>7}  {:>7}  {:>8}  {}\n",
            spec.name, spec.size, spec.classes, spec.features, spec.reference
        ));
    }
    out
}

/// Serialises a set of curves as CSV: one row per node budget, one column per
/// curve.
#[must_use]
pub fn curves_to_csv(curves: &[AccuracyCurve]) -> String {
    if curves.is_empty() {
        return String::from("nodes\n");
    }
    let mut out = String::from("nodes");
    for c in curves {
        out.push(',');
        out.push_str(&c.label);
    }
    out.push('\n');
    let len = curves.iter().map(|c| c.accuracy.len()).max().unwrap_or(0);
    for t in 0..len {
        out.push_str(&t.to_string());
        for c in curves {
            out.push(',');
            out.push_str(&format!("{:.4}", c.at(t)));
        }
        out.push('\n');
    }
    out
}

/// Renders curves as a fixed-size ASCII chart (accuracy vs. nodes), one
/// letter per curve, for terminal inspection of the figures.
#[must_use]
pub fn ascii_chart(curves: &[AccuracyCurve], height: usize, width: usize) -> String {
    if curves.is_empty() || height < 2 || width < 2 {
        return String::new();
    }
    let y_min = curves
        .iter()
        .flat_map(|c| c.accuracy.iter().copied())
        .fold(f64::INFINITY, f64::min)
        .min(1.0);
    let y_max = curves
        .iter()
        .flat_map(|c| c.accuracy.iter().copied())
        .fold(0.0f64, f64::max)
        .max(y_min + 1e-9);
    let max_nodes = curves
        .iter()
        .map(|c| c.accuracy.len().saturating_sub(1))
        .max()
        .unwrap_or(0)
        .max(1);

    let mut grid = vec![vec![' '; width]; height];
    let markers = ['E', 'H', 'G', 'I', 'Z', 'S', 'B', 'X'];
    for (ci, curve) in curves.iter().enumerate() {
        let marker = markers[ci % markers.len()];
        for (col, row) in (0..width)
            .map(|col| {
                let nodes = col * max_nodes / (width - 1).max(1);
                let acc = curve.at(nodes);
                let rel = (acc - y_min) / (y_max - y_min);
                height - 1 - ((rel * (height - 1) as f64).round() as usize).min(height - 1)
            })
            .enumerate()
        {
            grid[row][col] = marker;
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "accuracy {y_max:.3} (top) .. {y_min:.3} (bottom), nodes 0..{max_nodes}\n"
    ));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    for (ci, curve) in curves.iter().enumerate() {
        out.push_str(&format!(
            "  {} = {}\n",
            markers[ci % markers.len()],
            curve.label
        ));
    }
    out
}

/// One row of the improvement summary: how much a bulk load gains over the
/// iterative baseline on a given workload.
#[derive(Debug, Clone)]
pub struct Improvement {
    /// Workload name.
    pub dataset: String,
    /// Bulk-load label.
    pub method: String,
    /// Maximum accuracy gain over the baseline across all node budgets.
    pub max_gain: f64,
    /// Mean accuracy gain over the baseline across all node budgets.
    pub mean_gain: f64,
}

/// Computes, for each non-baseline curve, the maximum and mean accuracy gain
/// over the baseline curve — the quantity behind the paper's statement that
/// bulk loading improves accuracy "up to 13 %".
#[must_use]
pub fn improvement_summary(
    dataset: &str,
    baseline: &AccuracyCurve,
    others: &[AccuracyCurve],
) -> Vec<Improvement> {
    others
        .iter()
        .filter(|c| c.label != baseline.label)
        .map(|c| {
            let len = c.accuracy.len().max(baseline.accuracy.len());
            let mut max_gain = f64::NEG_INFINITY;
            let mut sum = 0.0;
            for t in 0..len {
                let gain = c.at(t) - baseline.at(t);
                max_gain = max_gain.max(gain);
                sum += gain;
            }
            Improvement {
                dataset: dataset.to_string(),
                method: c.label.clone(),
                max_gain,
                mean_gain: sum / len.max(1) as f64,
            }
        })
        .collect()
}

/// Formats an improvement summary as aligned text.
#[must_use]
pub fn format_improvements(rows: &[Improvement]) -> String {
    let mut out = String::from(
        "dataset     method       max gain  mean gain\n\
         ----------  -----------  --------  ---------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10}  {:<11}  {:>+7.1}%  {:>+8.1}%\n",
            r.dataset,
            r.method,
            r.max_gain * 100.0,
            r.mean_gain * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(label: &str, values: &[f64]) -> AccuracyCurve {
        AccuracyCurve {
            label: label.to_string(),
            accuracy: values.to_vec(),
            final_accuracy: *values.last().unwrap_or(&0.0),
        }
    }

    #[test]
    fn table1_contains_all_four_datasets() {
        let t = table1();
        for name in ["Pendigits", "Letter", "Gender", "Covertype"] {
            assert!(t.contains(name), "missing {name}");
        }
        assert!(t.contains("581012"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = curves_to_csv(&[curve("A", &[0.5, 0.6, 0.7]), curve("B", &[0.4, 0.5, 0.6])]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "nodes,A,B");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0,0.5000,0.4000"));
    }

    #[test]
    fn csv_of_nothing_is_just_a_header() {
        assert_eq!(curves_to_csv(&[]), "nodes\n");
    }

    #[test]
    fn ascii_chart_mentions_every_curve() {
        let chart = ascii_chart(
            &[
                curve("EMTopDown", &[0.5, 0.9]),
                curve("Iterativ", &[0.4, 0.8]),
            ],
            10,
            30,
        );
        assert!(chart.contains("E = EMTopDown"));
        assert!(chart.contains("H = Iterativ"));
        assert!(chart.lines().count() > 10);
    }

    #[test]
    fn improvement_summary_measures_gains() {
        let baseline = curve("Iterativ", &[0.5, 0.6, 0.7]);
        let better = curve("EMTopDown", &[0.6, 0.73, 0.75]);
        let rows = improvement_summary("toy", &baseline, &[better.clone(), baseline.clone()]);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].max_gain - 0.13).abs() < 1e-9);
        assert!(rows[0].mean_gain > 0.0);
        let text = format_improvements(&rows);
        assert!(text.contains("EMTopDown"));
        assert!(text.contains("+13.0%"));
    }
}
