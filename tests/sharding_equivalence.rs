//! Property tests for the sharded concurrent trees: sharding must be an
//! *organisational* change, never an observable one.
//!
//! Two equivalences are locked down for both instantiations (Bayes tree and
//! ClusTree):
//!
//! * a `Sharded*Tree` with **one shard** behaves exactly like the plain
//!   tree — per-object outcomes, node counts, heights, aggregate mass and
//!   work counters,
//! * a `Sharded*Tree` with the data-independent [`FixedPartitionRouter`] at
//!   **any shard count K** behaves exactly like K plain trees fed the same
//!   round-robin partition — the parallel path performs precisely the steps
//!   the sequential simulation performs, shard by shard.

use anytime_stream_mining::anytree::FixedPartitionRouter;
use anytime_stream_mining::bayestree::{BayesTree, ShardedBayesTree};
use anytime_stream_mining::clustree::{ClusTree, ClusTreeConfig, ShardedClusTree};
use anytime_stream_mining::index::PageGeometry;
use proptest::prelude::*;

/// Strategy producing a bounded set of 3-d points.
fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 3), 8..max_len)
}

/// Shifts every other point far away, shaping the raw points into the
/// two-cluster streams the routers are designed for.
fn two_clusters(mut points: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    for (i, p) in points.iter_mut().enumerate() {
        if i % 2 == 1 {
            for x in p.iter_mut() {
                *x += 40.0;
            }
        }
    }
    points
}

fn geometry() -> PageGeometry {
    PageGeometry::from_fanout(4, 4)
}

fn sorted_points(mut points: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    points.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    points
}

/// Deals `points` round-robin over `k` parts, continuing the rotation at
/// `next` — the exact partition [`FixedPartitionRouter`] produces.
fn round_robin_deal(points: &[Vec<f64>], k: usize, next: &mut usize) -> Vec<Vec<Vec<f64>>> {
    let mut parts: Vec<Vec<Vec<f64>>> = vec![Vec::new(); k];
    for p in points {
        parts[*next % k].push(p.clone());
        *next += 1;
    }
    parts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn one_shard_bayestree_equals_the_plain_tree(
        points in stream_strategy(120),
        batch_size in 1usize..24,
    ) {
        let points = two_clusters(points);
        let mut plain: BayesTree = BayesTree::new(3, geometry());
        let mut sharded: ShardedBayesTree = ShardedBayesTree::new(3, geometry(), 1);
        for chunk in points.chunks(batch_size) {
            plain.insert_batch(chunk.to_vec());
            let result = sharded.insert_batch(chunk.to_vec());
            prop_assert_eq!(result.objects_per_shard.clone(), vec![chunk.len()]);
        }
        prop_assert_eq!(plain.len(), sharded.len());
        prop_assert_eq!(plain.num_nodes(), sharded.num_nodes());
        prop_assert_eq!(plain.height(), sharded.height());
        prop_assert_eq!(plain.summary_refreshes(), sharded.summary_refreshes());
        prop_assert_eq!(
            sorted_points(plain.all_points()),
            sorted_points(sharded.all_points())
        );
        prop_assert!(sharded.validate().is_ok());
    }

    #[test]
    fn fixed_router_bayestree_equals_partitioned_plain_trees(
        points in stream_strategy(120),
        batch_size in 1usize..24,
        shards in 2usize..5,
    ) {
        let points = two_clusters(points);
        let mut sharded: ShardedBayesTree<FixedPartitionRouter> =
            ShardedBayesTree::new(3, geometry(), shards);
        let mut plain: Vec<BayesTree> =
            (0..shards).map(|_| BayesTree::new(3, geometry())).collect();
        let mut next = 0usize;
        for chunk in points.chunks(batch_size) {
            let parts = round_robin_deal(chunk, shards, &mut next);
            let result = sharded.insert_batch(chunk.to_vec());
            for (k, part) in parts.into_iter().enumerate() {
                prop_assert_eq!(result.objects_per_shard[k], part.len());
                if !part.is_empty() {
                    plain[k].insert_batch(part);
                }
            }
        }
        // Shard k of the sharded tree is observably the plain tree fed
        // partition k: same nodes, same height, same points, same work.
        for (k, reference) in plain.iter().enumerate() {
            let shard = &sharded.shards()[k];
            prop_assert_eq!(shard.num_nodes(), reference.num_nodes());
            prop_assert_eq!(shard.height(), reference.height());
            prop_assert_eq!(
                shard.stats().summary_refreshes,
                reference.summary_refreshes()
            );
        }
        prop_assert_eq!(
            sharded.num_nodes(),
            plain.iter().map(BayesTree::num_nodes).sum::<usize>()
        );
        prop_assert_eq!(
            sorted_points(sharded.all_points()),
            sorted_points(plain.iter().flat_map(BayesTree::all_points).collect())
        );
        prop_assert!(sharded.validate().is_ok());
    }

    #[test]
    fn one_shard_clustree_equals_the_plain_tree(
        points in stream_strategy(120),
        batch_size in 1usize..24,
        budget in 0usize..12,
    ) {
        let points = two_clusters(points);
        let mut plain = ClusTree::new(3, ClusTreeConfig::default());
        let mut sharded: ShardedClusTree =
            ShardedClusTree::new(3, ClusTreeConfig::default(), 1);
        for (batch_idx, chunk) in points.chunks(batch_size).enumerate() {
            let timestamp = batch_idx as f64;
            let a = plain.insert_batch(chunk, timestamp, budget);
            let b = sharded.insert_batch(chunk, timestamp, budget);
            prop_assert_eq!(a.outcomes, b.outcomes);
            prop_assert_eq!(a.depths, b.depths);
        }
        prop_assert_eq!(plain.len(), sharded.len());
        prop_assert_eq!(plain.num_nodes(), sharded.num_nodes());
        prop_assert_eq!(plain.height(), sharded.height());
        prop_assert_eq!(plain.num_micro_clusters(), sharded.num_micro_clusters());
        prop_assert_eq!(plain.summary_refreshes(), sharded.summary_refreshes());
        prop_assert!((plain.total_weight() - sharded.total_weight()).abs() < 1e-9);
        prop_assert!(sharded.validate().is_ok());
    }

    #[test]
    fn fixed_router_clustree_equals_partitioned_plain_trees(
        points in stream_strategy(120),
        batch_size in 1usize..24,
        shards in 2usize..5,
        budget in 0usize..12,
    ) {
        let points = two_clusters(points);
        let config = ClusTreeConfig::default();
        let mut sharded: ShardedClusTree<FixedPartitionRouter> =
            ShardedClusTree::new(3, config.clone(), shards);
        let mut plain: Vec<ClusTree> =
            (0..shards).map(|_| ClusTree::new(3, config.clone())).collect();
        let mut next = 0usize;
        for (batch_idx, chunk) in points.chunks(batch_size).enumerate() {
            let timestamp = batch_idx as f64;
            let start = next;
            let parts = round_robin_deal(chunk, shards, &mut next);
            let result = sharded.insert_batch(chunk, timestamp, budget);
            for (k, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                let reference = plain[k].insert_batch(&part, timestamp, budget);
                // Map each per-shard outcome back to its input position.
                let positions = (0..chunk.len()).filter(|i| (start + i) % shards == k);
                for (pos, expected) in positions.zip(reference.outcomes) {
                    prop_assert_eq!(result.outcomes[pos], expected);
                }
            }
        }
        for (k, reference) in plain.iter().enumerate() {
            let shard = &sharded.shards()[k];
            prop_assert_eq!(shard.num_nodes(), reference.num_nodes());
            prop_assert_eq!(shard.height(), reference.height());
        }
        let plain_weight: f64 = plain.iter().map(ClusTree::total_weight).sum();
        prop_assert!((sharded.total_weight() - plain_weight).abs() < 1e-9);
        prop_assert_eq!(
            sharded.num_micro_clusters(),
            plain.iter().map(ClusTree::num_micro_clusters).sum::<usize>()
        );
        prop_assert!(sharded.validate().is_ok());
    }

    #[test]
    fn sharded_classifier_training_is_bit_identical(
        seed in 0u64..1000,
        workers in 2usize..6,
    ) {
        use anytime_stream_mining::bayestree::{AnytimeClassifier, ClassifierConfig};
        use anytime_stream_mining::data::synth::blobs::BlobConfig;
        let dataset = BlobConfig::new(3, 3).samples_per_class(40).seed(seed).generate();
        let config = ClassifierConfig {
            geometry: Some(geometry()),
            ..ClassifierConfig::default()
        };
        let sequential = AnytimeClassifier::train(&dataset, &config);
        let parallel = AnytimeClassifier::train_sharded(&dataset, &config, workers);
        prop_assert_eq!(sequential.priors(), parallel.priors());
        for (a, b) in sequential.trees().iter().zip(parallel.trees()) {
            prop_assert_eq!(a.len(), b.len());
            prop_assert_eq!(a.num_nodes(), b.num_nodes());
            prop_assert_eq!(a.height(), b.height());
            prop_assert_eq!(a.bandwidth(), b.bandwidth());
        }
        // Same trees -> same decisions at every budget.
        for (x, _) in dataset.iter().take(10) {
            for budget in [0usize, 3, 10] {
                prop_assert_eq!(
                    sequential.classify_with_budget(x, budget).label,
                    parallel.classify_with_budget(x, budget).label
                );
            }
        }
    }
}
