//! Epoch-pinned snapshots of the clustering index and its sharded variant.
//!
//! Not to be confused with [`crate::snapshot`] (the pyramidal *time-frame*
//! store of micro-cluster sets): the types here are **isolation** snapshots
//! over the shared core's versioned arena — cheap, owned, `Send + Sync`
//! views whose density / k-NN / outlier answers stay bit-identical to the
//! moment they were taken, while later mini-batches keep mutating the live
//! tree (writers copy-on-write any node a snapshot still pins).

use crate::microcluster::MicroCluster;
use crate::query::{knn_from_cursors, stored_weight, ClusQueryModel, KnnAnswer};
use crate::tree::{collect_micro_clusters, finish_micro_clusters, ClusTree, ClusTreeConfig};
use bt_anytree::{
    OutlierScore, QueryAnswer, QueryStats, RefineOrder, ShardedQueryAnswer, ShardedTreeSnapshot,
    TreeSnapshot, TreeView,
};

/// An epoch-pinned, immutable view of a [`ClusTree`]: the core snapshot plus
/// the model parameters (decay rate, current time) frozen at snapshot time.
#[derive(Debug, Clone)]
pub struct ClusTreeSnapshot {
    core: TreeSnapshot<MicroCluster, MicroCluster>,
    config: ClusTreeConfig,
    current_time: f64,
    num_inserted: usize,
}

impl ClusTreeSnapshot {
    pub(crate) fn from_parts(
        core: TreeSnapshot<MicroCluster, MicroCluster>,
        config: ClusTreeConfig,
        current_time: f64,
        num_inserted: usize,
    ) -> Self {
        Self {
            core,
            config,
            current_time,
            num_inserted,
        }
    }

    /// Dimensionality of the clustered points.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.core.dims()
    }

    /// Number of objects inserted at snapshot time.
    #[must_use]
    pub fn len(&self) -> usize {
        self.num_inserted
    }

    /// Whether the snapshot holds no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_inserted == 0
    }

    /// Height of the tree at snapshot time.
    #[must_use]
    pub fn height(&self) -> usize {
        self.core.height()
    }

    /// The published epoch this snapshot pins.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// The latest timestamp seen at snapshot time.
    #[must_use]
    pub fn current_time(&self) -> f64 {
        self.current_time
    }

    /// The underlying core snapshot.
    #[must_use]
    pub fn core(&self) -> &TreeSnapshot<MicroCluster, MicroCluster> {
        &self.core
    }

    /// All micro-clusters as of snapshot time (leaf entries plus non-empty
    /// hitchhiker buffers, decayed to the frozen current time).
    #[must_use]
    pub fn micro_clusters(&self) -> Vec<MicroCluster> {
        let mut out = Vec::new();
        collect_micro_clusters(&self.core, &mut out);
        finish_micro_clusters(&mut out, self.current_time, self.config.decay_lambda);
        out
    }

    /// The micro-cluster query model frozen at snapshot time.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth has the wrong dimensionality or a
    /// non-positive component.
    #[must_use]
    pub fn query_model(&self, bandwidth: &[f64]) -> ClusQueryModel {
        assert_eq!(
            bandwidth.len(),
            self.dims(),
            "bandwidth dimensionality mismatch"
        );
        ClusQueryModel::new(
            stored_weight(&self.core),
            bandwidth.to_vec(),
            self.config.decay_lambda,
        )
    }

    /// Budget-bracketed anytime density score against the frozen tree (see
    /// [`ClusTree::anytime_density`]).
    ///
    /// # Panics
    ///
    /// Panics if the query or bandwidth has the wrong dimensionality.
    #[must_use]
    pub fn anytime_density(
        &self,
        x: &[f64],
        bandwidth: &[f64],
        order: RefineOrder,
        budget: usize,
    ) -> QueryAnswer {
        self.core
            .query_with_budget(&self.query_model(bandwidth), x, order, budget)
    }

    /// Batched density queries through one reused cursor (see
    /// [`ClusTree::density_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if any query or the bandwidth has the wrong dimensionality.
    #[must_use]
    pub fn density_batch(
        &self,
        queries: &[Vec<f64>],
        bandwidth: &[f64],
        order: RefineOrder,
        budget: usize,
    ) -> (Vec<QueryAnswer>, QueryStats) {
        self.core
            .query_batch(&self.query_model(bandwidth), queries, order, budget)
    }

    /// Anytime k-NN micro-cluster retrieval against the frozen tree (see
    /// [`ClusTree::anytime_knn`]).
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn anytime_knn(&self, x: &[f64], k: usize, budget: usize) -> KnnAnswer {
        let started = bt_anytree::obs::boundary_timer();
        let model = self.query_model(&vec![1.0; self.dims()]);
        let mut cursor = self.core.new_query(&model, x);
        self.core
            .refine_query_up_to(&model, RefineOrder::ClosestFirst, budget, &mut cursor);
        bt_anytree::obs::record_external_query(cursor.stats(), started);
        knn_from_cursors(&[&self.core], std::slice::from_ref(&cursor), &model, k)
    }

    /// Anytime outlier scoring against the frozen tree (see
    /// [`ClusTree::outlier_score`]).
    ///
    /// # Panics
    ///
    /// Panics if the query or bandwidth has the wrong dimensionality.
    #[must_use]
    pub fn outlier_score(
        &self,
        x: &[f64],
        bandwidth: &[f64],
        threshold: f64,
        budget: usize,
    ) -> OutlierScore {
        self.core
            .outlier_score(&self.query_model(bandwidth), x, threshold, budget)
    }
}

impl ClusTree {
    /// Takes an epoch-pinned snapshot: the versioned arena spine is cloned,
    /// the published epoch pinned, and the model parameters (decay rate,
    /// current time, insert count) frozen alongside.  `Send + Sync`; keeps
    /// answering queries bit-identically to this moment while later batches
    /// mutate the tree.
    #[must_use]
    pub fn snapshot(&self) -> ClusTreeSnapshot {
        ClusTreeSnapshot::from_parts(
            self.core().snapshot(),
            self.config().clone(),
            self.current_time(),
            self.len(),
        )
    }
}

/// An epoch-pinned, immutable view of a
/// [`ShardedClusTree`](crate::ShardedClusTree): one pinned core snapshot per
/// shard plus the frozen model parameters.
#[derive(Debug, Clone)]
pub struct ShardedClusTreeSnapshot {
    core: ShardedTreeSnapshot<MicroCluster, MicroCluster>,
    config: ClusTreeConfig,
    current_time: f64,
    num_inserted: usize,
}

impl ShardedClusTreeSnapshot {
    pub(crate) fn from_parts(
        core: ShardedTreeSnapshot<MicroCluster, MicroCluster>,
        config: ClusTreeConfig,
        current_time: f64,
        num_inserted: usize,
    ) -> Self {
        Self {
            core,
            config,
            current_time,
            num_inserted,
        }
    }

    /// Number of shards captured.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.core.num_shards()
    }

    /// Number of objects inserted at snapshot time (across all shards).
    #[must_use]
    pub fn len(&self) -> usize {
        self.num_inserted
    }

    /// Whether the snapshot holds no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_inserted == 0
    }

    /// The per-shard epochs this snapshot pins.
    #[must_use]
    pub fn epochs(&self) -> Vec<u64> {
        self.core.epochs()
    }

    /// The latest timestamp seen at snapshot time.
    #[must_use]
    pub fn current_time(&self) -> f64 {
        self.current_time
    }

    /// The micro-cluster query model frozen at snapshot time, normalised by
    /// the **global** stored weight across the frozen shards.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth has the wrong dimensionality or a
    /// non-positive component.
    #[must_use]
    pub fn query_model(&self, bandwidth: &[f64]) -> ClusQueryModel {
        let dims = self.core.shard(0).dims();
        assert_eq!(bandwidth.len(), dims, "bandwidth dimensionality mismatch");
        let total: f64 = self.core.shards().iter().map(stored_weight).sum();
        ClusQueryModel::new(total, bandwidth.to_vec(), self.config.decay_lambda)
    }

    /// Folded anytime density score against the frozen shards (see
    /// [`crate::ShardedClusTree::anytime_density`]).
    ///
    /// # Panics
    ///
    /// Panics if the query or bandwidth has the wrong dimensionality.
    #[must_use]
    pub fn anytime_density(
        &self,
        x: &[f64],
        bandwidth: &[f64],
        order: RefineOrder,
        budget: usize,
    ) -> ShardedQueryAnswer {
        let model = self.query_model(bandwidth);
        self.core
            .query_with_budget(&|| model.clone(), x, order, budget)
    }

    /// Batched folded density queries against the frozen shards.
    ///
    /// # Panics
    ///
    /// Panics if any query or the bandwidth has the wrong dimensionality.
    #[must_use]
    pub fn density_batch(
        &self,
        queries: &[Vec<f64>],
        bandwidth: &[f64],
        order: RefineOrder,
        budget: usize,
    ) -> (Vec<ShardedQueryAnswer>, QueryStats) {
        let model = self.query_model(bandwidth);
        self.core
            .query_batch(&|| model.clone(), queries, order, budget)
    }

    /// Anytime k-NN retrieval folded across the frozen shards (see
    /// [`crate::ShardedClusTree::anytime_knn`]).
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    #[must_use]
    pub fn anytime_knn(&self, x: &[f64], k: usize, budget: usize) -> KnnAnswer {
        let started = bt_anytree::obs::boundary_timer();
        let dims = self.core.shard(0).dims();
        let model = self.query_model(&vec![1.0; dims]);
        let cursors =
            self.core
                .refine_frontiers(&|| model.clone(), x, RefineOrder::ClosestFirst, budget);
        crate::sharded::record_sharded_knn(&cursors, started);
        let shards: Vec<&TreeSnapshot<MicroCluster, MicroCluster>> =
            self.core.shards().iter().collect();
        knn_from_cursors(&shards, &cursors, &model, k)
    }

    /// Anytime outlier scoring against the frozen shards.
    ///
    /// # Panics
    ///
    /// Panics if the query or bandwidth has the wrong dimensionality.
    #[must_use]
    pub fn outlier_score(
        &self,
        x: &[f64],
        bandwidth: &[f64],
        threshold: f64,
        budget: usize,
    ) -> OutlierScore {
        let model = self.query_model(bandwidth);
        self.core
            .outlier_score(&|| model.clone(), x, threshold, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_anytree::OutlierVerdict;

    fn two_cluster_stream(n: usize) -> Vec<(Vec<f64>, f64)> {
        (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 20.0 };
                let jitter = (i % 9) as f64 * 0.1;
                (vec![c + jitter, c - jitter], i as f64)
            })
            .collect()
    }

    #[test]
    fn snapshot_density_and_knn_stay_frozen_under_inserts() {
        let mut tree = ClusTree::new(2, ClusTreeConfig::default());
        for (p, t) in two_cluster_stream(200) {
            tree.insert(&p, t, 8);
        }
        let snapshot = tree.snapshot();
        let bandwidth = [1.5, 1.5];
        let frozen = snapshot.anytime_density(&[0.5, -0.5], &bandwidth, RefineOrder::BestFirst, 10);
        let frozen_knn = snapshot.anytime_knn(&[0.5, -0.5], 3, 25);
        let frozen_mcs = snapshot.micro_clusters().len();

        for (p, t) in two_cluster_stream(200) {
            tree.insert(&p, 200.0 + t, 8);
        }
        assert_eq!(
            snapshot.anytime_density(&[0.5, -0.5], &bandwidth, RefineOrder::BestFirst, 10),
            frozen
        );
        let again = snapshot.anytime_knn(&[0.5, -0.5], 3, 25);
        assert_eq!(again.nodes_read, frozen_knn.nodes_read);
        for (a, b) in again.neighbors.iter().zip(&frozen_knn.neighbors) {
            assert_eq!(a.center, b.center);
            assert_eq!(a.sq_dist, b.sq_dist);
        }
        assert_eq!(snapshot.micro_clusters().len(), frozen_mcs);
        assert_eq!(snapshot.len(), 200);
        assert_eq!(tree.len(), 400);
    }

    #[test]
    fn mbr_backed_upper_bound_certifies_far_outliers_quickly() {
        let mut tree = ClusTree::new(2, ClusTreeConfig::default());
        for (p, t) in two_cluster_stream(400) {
            tree.insert(&p, t, 10);
        }
        let bandwidth = [1.0, 1.0];
        let score = tree.outlier_score(&[500.0, 500.0], &bandwidth, 1e-6, 10_000);
        assert_eq!(score.verdict, OutlierVerdict::Outlier);
        // With the distance-aware MBR bound the verdict is near-immediate —
        // the bare-CF peak bound needed refinement down to leaf granularity.
        assert!(
            score.answer.nodes_read <= 2,
            "MBR bound should certify a far outlier in <=2 reads, took {}",
            score.answer.nodes_read
        );
    }

    #[test]
    fn snapshots_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClusTreeSnapshot>();
        assert_send_sync::<ShardedClusTreeSnapshot>();
    }
}
