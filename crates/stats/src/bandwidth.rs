//! Kernel bandwidth selection.
//!
//! The paper sets the bandwidth of its `d`-dimensional Gaussian kernel
//! estimators with "a common data independent method according to
//! [Silverman, 1986]" (Section 2.1).  This module implements Silverman's
//! rule of thumb, generalised per dimension, plus Scott's rule as an
//! alternative for ablation.

use crate::summary::RunningStats;

/// Silverman's rule-of-thumb bandwidth for a `d`-dimensional Gaussian kernel.
///
/// For dimension `j` with sample standard deviation `sigma_j` over `n`
/// observations the bandwidth is
///
/// ```text
/// h_j = sigma_j * (4 / (d + 2))^(1/(d+4)) * n^(-1/(d+4))
/// ```
///
/// Degenerate dimensions (zero spread) receive a small positive bandwidth so
/// the kernel stays a proper density.
#[must_use]
pub fn silverman_bandwidth(points: &[Vec<f64>], dims: usize) -> Vec<f64> {
    let n = points.len().max(1) as f64;
    let d = dims as f64;
    let factor = (4.0 / (d + 2.0)).powf(1.0 / (d + 4.0)) * n.powf(-1.0 / (d + 4.0));
    per_dimension_sigma(points, dims)
        .into_iter()
        .map(|sigma| {
            let h = sigma * factor;
            if h > 0.0 {
                h
            } else {
                DEGENERATE_BANDWIDTH
            }
        })
        .collect()
}

/// Scott's rule bandwidth: `h_j = sigma_j * n^(-1/(d+4))`.
#[must_use]
pub fn scott_bandwidth(points: &[Vec<f64>], dims: usize) -> Vec<f64> {
    let n = points.len().max(1) as f64;
    let d = dims as f64;
    let factor = n.powf(-1.0 / (d + 4.0));
    per_dimension_sigma(points, dims)
        .into_iter()
        .map(|sigma| {
            let h = sigma * factor;
            if h > 0.0 {
                h
            } else {
                DEGENERATE_BANDWIDTH
            }
        })
        .collect()
}

/// Bandwidth assigned to dimensions with no spread at all.
pub const DEGENERATE_BANDWIDTH: f64 = 1e-3;

fn per_dimension_sigma(points: &[Vec<f64>], dims: usize) -> Vec<f64> {
    let mut stats: Vec<RunningStats> = vec![RunningStats::new(); dims];
    for p in points {
        for (d, s) in stats.iter_mut().enumerate() {
            s.push(p[d]);
        }
    }
    stats.iter().map(RunningStats::std_dev).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cube_points() -> Vec<Vec<f64>> {
        (0..100)
            .map(|i| vec![i as f64 / 100.0, (i % 10) as f64 / 10.0])
            .collect()
    }

    #[test]
    fn bandwidth_has_one_entry_per_dimension() {
        let pts = unit_cube_points();
        assert_eq!(silverman_bandwidth(&pts, 2).len(), 2);
    }

    #[test]
    fn bandwidth_shrinks_with_more_data() {
        let few: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let many: Vec<Vec<f64>> = (0..10_000).map(|i| vec![(i % 10) as f64]).collect();
        let h_few = silverman_bandwidth(&few, 1)[0];
        let h_many = silverman_bandwidth(&many, 1)[0];
        assert!(h_many < h_few);
    }

    #[test]
    fn degenerate_dimension_gets_positive_bandwidth() {
        let pts = vec![vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]];
        let h = silverman_bandwidth(&pts, 2);
        assert!(h[1] > 0.0);
    }

    #[test]
    fn scott_and_silverman_are_close() {
        let pts = unit_cube_points();
        let s = silverman_bandwidth(&pts, 2);
        let c = scott_bandwidth(&pts, 2);
        for (a, b) in s.iter().zip(&c) {
            assert!((a / b - (4.0 / 4.0f64).powf(0.0)).abs() < 1.0);
        }
    }

    #[test]
    fn bandwidth_scales_with_spread() {
        let narrow: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.01]).collect();
        let wide: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        assert!(silverman_bandwidth(&wide, 1)[0] > silverman_bandwidth(&narrow, 1)[0]);
    }
}
