//! The arena tree and its budgeted insertion algorithm.

use crate::model::InsertModel;
use crate::node::{Entry, Node, NodeId, NodeKind};
use crate::split::split_entries;
use crate::summary::Summary;
use bt_index::rstar::choose_subtree_by;
use bt_index::PageGeometry;

/// What happened to an inserted object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The object reached leaf level and was stored there.
    ReachedLeaf,
    /// The object ran out of budget and was parked in a hitchhiker buffer at
    /// the reported depth.
    Parked {
        /// Depth at which the object was parked (1 = directly below the
        /// root).
        depth: usize,
    },
}

/// A pending split travelling up the recursion: the two entries replacing
/// the overflowed child's entry in its parent.
type SplitPair<S> = Option<(Entry<S>, Entry<S>)>;

/// The shared anytime index: a balanced arena tree whose directory entries
/// aggregate a payload [`Summary`] of their subtree.
#[derive(Debug, Clone)]
pub struct AnytimeTree<S: Summary, L> {
    dims: usize,
    geometry: PageGeometry,
    nodes: Vec<Node<S, L>>,
    root: NodeId,
    height: usize,
}

impl<S: Summary, L: Clone + std::fmt::Debug> AnytimeTree<S, L> {
    /// Creates an empty tree (a single empty leaf root) for
    /// `dims`-dimensional data.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn new(dims: usize, geometry: PageGeometry) -> Self {
        assert!(dims > 0, "dimensionality must be positive");
        Self {
            dims,
            geometry,
            nodes: vec![Node::empty_leaf()],
            root: 0,
            height: 1,
        }
    }

    /// Dimensionality of the indexed data.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Fanout / leaf-capacity parameters of the tree.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.geometry
    }

    /// The arena index of the root node.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Height of the tree (a single leaf root has height 1).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Read access to a node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node<S, L> {
        &self.nodes[id]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node<S, L> {
        &mut self.nodes[id]
    }

    /// Adds a node to the arena and returns its id.
    pub fn push_node(&mut self, node: Node<S, L>) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Replaces the root node id and height (used by bulk loaders).
    pub fn set_root(&mut self, root: NodeId, height: usize) {
        self.root = root;
        self.height = height;
    }

    /// The ids of every node reachable from the root, in depth-first order.
    #[must_use]
    pub fn reachable(&self) -> Vec<NodeId> {
        let mut stack = vec![self.root];
        let mut out = Vec::new();
        while let Some(id) = stack.pop() {
            out.push(id);
            if let NodeKind::Inner { entries } = &self.nodes[id].kind {
                for e in entries {
                    stack.push(e.child);
                }
            }
        }
        out
    }

    /// Number of nodes reachable from the root (the arena may additionally
    /// hold nodes orphaned by bulk loading).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.reachable().len()
    }

    /// Maximum leaf depth below `node` (a leaf has depth 1).
    #[must_use]
    pub fn measure_depth(&self, node: NodeId) -> usize {
        match &self.nodes[node].kind {
            NodeKind::Leaf { .. } => 1,
            NodeKind::Inner { entries } => {
                1 + entries
                    .iter()
                    .map(|e| self.measure_depth(e.child))
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    /// Builds the entry describing inner node `id` by folding its entries'
    /// summaries, then refreshing the result.
    ///
    /// Buffers are deliberately *not* added: an entry's summary already
    /// includes the mass parked in its own buffer (objects are absorbed into
    /// the summary before being parked), so every entry satisfies
    /// `summary == child content + own buffer` and the node's total is just
    /// the sum of its entries' summaries.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a non-empty inner node.
    #[must_use]
    pub fn summarize_inner(&self, id: NodeId, ctx: S::Ctx) -> Entry<S> {
        let entries = self.nodes[id].entries();
        assert!(!entries.is_empty(), "cannot summarise an empty inner node");
        let mut summary = entries[0].summary.clone();
        for e in &entries[1..] {
            summary.merge(&e.summary, ctx);
        }
        summary.refresh(ctx);
        Entry::new(summary, id)
    }

    /// Builds the entry describing any non-empty node `id`: leaf nodes are
    /// summarised through the model's leaf policy, inner nodes by folding
    /// their entries ([`Self::summarize_inner`]).
    ///
    /// # Panics
    ///
    /// Panics if the node is empty.
    #[must_use]
    pub fn summarize_node<M>(&self, model: &M, id: NodeId) -> Entry<S>
    where
        M: InsertModel<S, LeafItem = L>,
    {
        match &self.nodes[id].kind {
            NodeKind::Leaf { items } => {
                assert!(!items.is_empty(), "cannot summarise an empty leaf");
                Entry::new(model.summarize_leaf_items(items), id)
            }
            NodeKind::Inner { .. } => self.summarize_inner(id, model.ctx()),
        }
    }

    /// Inserts one object with a budget of `budget` descent steps, driving
    /// the workload-specific decisions through `model`.
    ///
    /// A budget of 0 parks the object at root level immediately (for
    /// buffered models); unbuffered models ignore the budget.  Overflowing
    /// nodes split (when the model allows it) and splits propagate upward;
    /// a root split grows the tree by one level.
    pub fn insert<M>(&mut self, model: &mut M, obj: M::Object, budget: usize) -> InsertOutcome
    where
        M: InsertModel<S, LeafItem = L>,
    {
        let mut scratch = Vec::new();
        let root = self.root;
        let (outcome, split) = self.insert_rec(model, root, obj, budget, 1, &mut scratch);
        if let Some((e1, e2)) = split {
            let new_root = self.push_node(Node::inner(vec![e1, e2]));
            self.root = new_root;
            self.height += 1;
        }
        outcome
    }

    #[allow(clippy::too_many_lines)]
    fn insert_rec<M>(
        &mut self,
        model: &mut M,
        node_id: NodeId,
        mut obj: M::Object,
        budget: usize,
        depth: usize,
        scratch: &mut Vec<f64>,
    ) -> (InsertOutcome, SplitPair<S>)
    where
        M: InsertModel<S, LeafItem = L>,
    {
        let ctx = model.ctx();
        let has_time = budget > 0;

        // Leaf: hand the object to the model's leaf policy.
        if self.nodes[node_id].is_leaf() {
            let items = self.nodes[node_id].items_mut();
            model.refresh_leaf_items(items);
            model.insert_into_leaf(items, obj);
            let split = self.handle_overflow(model, node_id, has_time);
            return (InsertOutcome::ReachedLeaf, split);
        }

        // Directory node: refresh summaries, route, absorb.
        let (child, descend) = {
            let entries = self.nodes[node_id].entries_mut();
            for e in entries.iter_mut() {
                e.summary.refresh(ctx);
                if let Some(b) = &mut e.buffer {
                    b.refresh(ctx);
                }
            }
            let idx = route(entries, model, &obj, scratch);
            // The object ends up somewhere below this entry either way, so
            // the aggregate absorbs it now.
            model.absorb_into(&mut entries[idx].summary, &obj);

            if M::BUFFERED && budget == 0 {
                // Out of time: park the object in the hitchhiker buffer.
                match &mut entries[idx].buffer {
                    Some(b) => model.absorb_into(b, &obj),
                    slot @ None => *slot = Some(model.summary_of(&obj)),
                }
                return (InsertOutcome::Parked { depth }, None);
            }
            if M::BUFFERED {
                // Pick up waiting hitchhikers and carry them down.
                if let Some(buffer) = entries[idx].buffer.take() {
                    model.merge_buffer_into_object(&mut obj, buffer);
                }
            }
            (entries[idx].child, idx)
        };

        let cost = model.step_cost();
        let (outcome, child_split) = self.insert_rec(
            model,
            child,
            obj,
            budget.saturating_sub(cost),
            depth + 1,
            scratch,
        );
        if let Some((e1, e2)) = child_split {
            let entries = self.nodes[node_id].entries_mut();
            entries[descend] = e1;
            entries.push(e2);
        }
        let split = self.handle_overflow(model, node_id, has_time);
        (outcome, split)
    }

    /// Handles an overfull node: splits it when the model allows, otherwise
    /// falls back to the model's collapse policy (leaves) or tolerates the
    /// bounded overflow (directory nodes).
    fn handle_overflow<M>(&mut self, model: &M, node_id: NodeId, has_time: bool) -> SplitPair<S>
    where
        M: InsertModel<S, LeafItem = L>,
    {
        let is_leaf = self.nodes[node_id].is_leaf();
        let cap = if is_leaf {
            self.geometry.max_leaf
        } else {
            self.geometry.max_fanout
        };
        if self.nodes[node_id].len() <= cap {
            return None;
        }
        if !model.may_split(has_time) {
            if is_leaf {
                model.collapse_leaf_items(self.nodes[node_id].items_mut());
            }
            // Directory overflow without permission to split is tolerated:
            // it is bounded by one extra entry per insertion and resolved by
            // a later descent with time to spare.
            return None;
        }
        Some(if is_leaf {
            self.split_leaf(model, node_id)
        } else {
            self.split_inner(model.ctx(), node_id)
        })
    }

    fn split_leaf<M>(&mut self, model: &M, node_id: NodeId) -> (Entry<S>, Entry<S>)
    where
        M: InsertModel<S, LeafItem = L>,
    {
        let items = std::mem::take(self.nodes[node_id].items_mut());
        let (first, second) = model.split_leaf_items(items, &self.geometry);
        *self.nodes[node_id].items_mut() = first;
        let new_node = self.push_node(Node::leaf(second));
        (
            Entry::new(
                model.summarize_leaf_items(self.nodes[node_id].items()),
                node_id,
            ),
            Entry::new(
                model.summarize_leaf_items(self.nodes[new_node].items()),
                new_node,
            ),
        )
    }

    fn split_inner(&mut self, ctx: S::Ctx, node_id: NodeId) -> (Entry<S>, Entry<S>) {
        let entries = std::mem::take(self.nodes[node_id].entries_mut());
        let (first, second) = split_entries(entries, &self.geometry);
        *self.nodes[node_id].entries_mut() = first;
        let new_node = self.push_node(Node::inner(second));
        (
            self.summarize_inner(node_id, ctx),
            self.summarize_inner(new_node, ctx),
        )
    }
}

/// Chooses the entry the object descends into: by R* least enlargement for
/// MBR-routed payloads, by closest summary otherwise.
fn route<S, M>(entries: &[Entry<S>], model: &M, obj: &M::Object, scratch: &mut Vec<f64>) -> usize
where
    S: Summary,
    M: InsertModel<S>,
{
    debug_assert!(!entries.is_empty(), "directory nodes are never empty");
    let point = model.route_point(obj, scratch);
    if S::MBR_ROUTED {
        choose_subtree_by(
            entries,
            |e| {
                e.summary
                    .as_mbr()
                    .expect("MBR-routed payload exposes an MBR")
            },
            point,
        )
    } else {
        entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = a.summary.sq_dist_to(point);
                let db = b.summary.sq_dist_to(point);
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .expect("directory node has entries")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InsertModel;

    /// A minimal distance-routed payload: (weight, centre).
    #[derive(Debug, Clone)]
    struct Blob {
        weight: f64,
        sum: Vec<f64>,
    }

    impl Blob {
        fn center_of(&self) -> Vec<f64> {
            self.sum.iter().map(|s| s / self.weight).collect()
        }
    }

    impl Summary for Blob {
        type Ctx = ();
        fn merge(&mut self, other: &Self, _ctx: ()) {
            self.weight += other.weight;
            for (a, b) in self.sum.iter_mut().zip(&other.sum) {
                *a += b;
            }
        }
        fn weight(&self) -> f64 {
            self.weight
        }
        fn sq_dist_to(&self, point: &[f64]) -> f64 {
            self.center_of()
                .iter()
                .zip(point)
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        }
        fn center(&self) -> Vec<f64> {
            self.center_of()
        }
    }

    /// A buffered model storing blobs directly at leaf level.
    struct BlobModel;

    impl InsertModel<Blob> for BlobModel {
        type Object = Blob;
        type LeafItem = Blob;
        const BUFFERED: bool = true;

        fn ctx(&self) {}
        fn route_point<'a>(&self, obj: &'a Blob, scratch: &'a mut Vec<f64>) -> &'a [f64] {
            scratch.clear();
            scratch.extend(obj.center_of());
            scratch
        }
        fn summary_of(&self, obj: &Blob) -> Blob {
            obj.clone()
        }
        fn absorb_into(&self, summary: &mut Blob, obj: &Blob) {
            summary.merge(obj, ());
        }
        fn merge_buffer_into_object(&self, obj: &mut Blob, buffer: Blob) {
            obj.merge(&buffer, ());
        }
        fn insert_into_leaf(&mut self, items: &mut Vec<Blob>, obj: Blob) {
            items.push(obj);
        }
        fn summarize_leaf_items(&self, items: &[Blob]) -> Blob {
            let mut s = items[0].clone();
            for i in &items[1..] {
                s.merge(i, ());
            }
            s
        }
        fn split_leaf_items(
            &self,
            items: Vec<Blob>,
            geometry: &PageGeometry,
        ) -> (Vec<Blob>, Vec<Blob>) {
            let centers: Vec<Vec<f64>> = items.iter().map(Summary::center).collect();
            let (a, b) = crate::split::polar_partition(&centers, geometry.max_leaf);
            crate::split::distribute(items, &a, &b)
        }
    }

    fn blob(x: f64, y: f64) -> Blob {
        Blob {
            weight: 1.0,
            sum: vec![x, y],
        }
    }

    fn geometry() -> PageGeometry {
        PageGeometry {
            min_fanout: 1,
            max_fanout: 3,
            min_leaf: 1,
            max_leaf: 3,
        }
    }

    fn total_weight(tree: &AnytimeTree<Blob, Blob>) -> f64 {
        let mut total = 0.0;
        for id in tree.reachable() {
            match &tree.node(id).kind {
                NodeKind::Leaf { items } => total += items.iter().map(|b| b.weight).sum::<f64>(),
                NodeKind::Inner { entries } => {
                    total += entries.iter().map(Entry::buffered_weight).sum::<f64>();
                }
            }
        }
        total
    }

    #[test]
    fn unbudgeted_inserts_reach_leaves_and_grow_the_tree() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        for i in 0..60 {
            let c = if i % 2 == 0 { 0.0 } else { 20.0 };
            let outcome = tree.insert(&mut model, blob(c + (i % 5) as f64 * 0.1, c), usize::MAX);
            assert_eq!(outcome, InsertOutcome::ReachedLeaf);
        }
        assert!(tree.height() > 1);
        assert!((total_weight(&tree) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_parks_at_the_root() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        for i in 0..30 {
            tree.insert(&mut model, blob(i as f64, 0.0), usize::MAX);
        }
        assert!(tree.height() > 1);
        let outcome = tree.insert(&mut model, blob(0.0, 0.0), 0);
        assert_eq!(outcome, InsertOutcome::Parked { depth: 1 });
        assert!((total_weight(&tree) - 31.0).abs() < 1e-9);
    }

    #[test]
    fn hitchhikers_are_carried_down_and_mass_is_conserved() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        for i in 0..30 {
            tree.insert(&mut model, blob(i as f64, i as f64), usize::MAX);
        }
        for _ in 0..5 {
            tree.insert(&mut model, blob(3.0, 3.0), 0);
        }
        for _ in 0..10 {
            tree.insert(&mut model, blob(3.1, 3.1), usize::MAX);
        }
        assert!((total_weight(&tree) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn root_entry_summaries_cover_all_mass() {
        let mut tree = AnytimeTree::new(2, geometry());
        let mut model = BlobModel;
        for i in 0..80 {
            tree.insert(&mut model, blob((i % 9) as f64, (i % 7) as f64), 3);
        }
        let root = tree.node(tree.root());
        if !root.is_leaf() {
            let total: f64 = root.entries().iter().map(Entry::weight).sum();
            let buffered: f64 = root.entries().iter().map(Entry::buffered_weight).sum();
            assert!((total + buffered - 80.0).abs() < 1e-9 || (total - 80.0).abs() < 1e-9);
        }
    }

    #[test]
    fn height_tracks_root_splits() {
        let mut tree = AnytimeTree::new(1, geometry());
        let mut model = BlobModel;
        for i in 0..100 {
            tree.insert(
                &mut model,
                Blob {
                    weight: 1.0,
                    sum: vec![i as f64],
                },
                usize::MAX,
            );
        }
        assert_eq!(tree.height(), tree.measure_depth(tree.root()));
    }
}
