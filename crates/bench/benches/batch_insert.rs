//! Criterion bench: single-object vs. mini-batch insertion throughput on the
//! shared batched descent engine, at batch sizes 1 / 8 / 64.
//!
//! Batching amortises the per-node summary refresh (and the split handling)
//! over the batch; the bench additionally prints the trees' refresh counters
//! so the saving is visible directly: at batch size `b` the engine performs
//! roughly `1/b` of the sequential path's refresh operations.

use bayestree::BayesTree;
use bt_data::stream::DriftingStream;
use bt_data::synth::Benchmark;
use bt_index::PageGeometry;
use clustree::{ClusTree, ClusTreeConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const STREAM_LEN: usize = 4_000;
const NODE_BUDGET: usize = 8;

fn clustree_stream() -> Vec<Vec<f64>> {
    DriftingStream::new(4, 3, 0.3, 0.002, 17)
        .generate(STREAM_LEN)
        .into_iter()
        .map(|(p, _)| p)
        .collect()
}

fn build_clustree_batched(points: &[Vec<f64>], batch_size: usize) -> ClusTree {
    let mut tree = ClusTree::new(3, ClusTreeConfig::default());
    if batch_size <= 1 {
        for (t, p) in points.iter().enumerate() {
            tree.insert(p, t as f64, NODE_BUDGET);
        }
    } else {
        for (batch_idx, chunk) in points.chunks(batch_size).enumerate() {
            tree.insert_batch(chunk, (batch_idx * batch_size) as f64, NODE_BUDGET);
        }
    }
    tree
}

fn build_bayestree_batched(points: &[Vec<f64>], dims: usize, batch_size: usize) -> BayesTree {
    let geometry = PageGeometry::default_for_dims(dims);
    let mut tree: BayesTree = BayesTree::new(dims, geometry);
    if batch_size <= 1 {
        for p in points {
            tree.insert(p.clone());
        }
    } else {
        for chunk in points.chunks(batch_size) {
            tree.insert_batch(chunk.to_vec());
        }
    }
    tree
}

/// Prints the refresh counters once, outside the timed loops: the measured
/// evidence that batched descent refreshes fewer summaries per object.
fn report_refresh_savings(clus_points: &[Vec<f64>], bayes_points: &[Vec<f64>], dims: usize) {
    eprintln!("summary refresh operations over {STREAM_LEN} objects (lower is better):");
    let sequential_refreshes = build_clustree_batched(clus_points, 1).summary_refreshes();
    for &batch_size in &[1usize, 8, 64] {
        let clus = build_clustree_batched(clus_points, batch_size);
        let bayes = build_bayestree_batched(bayes_points, dims, batch_size);
        eprintln!(
            "  batch {batch_size:>2}: clustree {:>8}, bayestree {:>8}",
            clus.summary_refreshes(),
            bayes.summary_refreshes()
        );
        if batch_size > 1 {
            assert!(
                clus.summary_refreshes() < sequential_refreshes,
                "batched descent must refresh fewer summaries than sequential"
            );
        }
    }
}

fn batch_insert_benchmarks(c: &mut Criterion) {
    let clus_points = clustree_stream();
    let bayes_dataset = Benchmark::Pendigits.generate(STREAM_LEN, 11);
    let dims = bayes_dataset.dims();
    let bayes_points: Vec<Vec<f64>> = bayes_dataset.features().to_vec();

    report_refresh_savings(&clus_points, &bayes_points, dims);

    let mut group = c.benchmark_group("clustree_batch_insert");
    for &batch_size in &[1usize, 8, 64] {
        group.throughput(Throughput::Elements(STREAM_LEN as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(batch_size),
            &batch_size,
            |b, &batch_size| {
                b.iter(|| {
                    let tree = build_clustree_batched(black_box(&clus_points), batch_size);
                    black_box(tree.num_nodes())
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("bayestree_batch_insert");
    for &batch_size in &[1usize, 8, 64] {
        group.throughput(Throughput::Elements(STREAM_LEN as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(batch_size),
            &batch_size,
            |b, &batch_size| {
                b.iter(|| {
                    let tree = build_bayestree_batched(black_box(&bayes_points), dims, batch_size);
                    black_box(tree.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, batch_insert_benchmarks);
criterion_main!(benches);
