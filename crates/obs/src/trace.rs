//! Structured span tracing for the batch-insert and query-refinement
//! lifecycles.
//!
//! Tracing is separate from metrics because its events fire on per-node
//! paths (`descend`, `gather`), not just at boundaries: it is **off by
//! default** and gated by its own relaxed-atomic flag, so the disabled
//! cost on a hot loop is one load and a predictable branch.  Callers
//! build events lazily through [`trace`]'s closure so a disabled trace
//! never pays for event construction.
//!
//! Events go to the installed [`TraceSubscriber`]; the default is a
//! process-global bounded [`TraceRing`] that overwrites its oldest events
//! (and counts the overwrites) rather than blocking or growing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::metrics_compiled;

/// One span event from the tree layers.
///
/// The `RefineStep` stream is the paper's quality-over-time curve as
/// events: each refinement round of an outlier/density query reports the
/// budget spent so far, the current certified bound width and whether the
/// verdict is already certified.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The batched-insert cursor descended one level.
    Descend {
        /// Arena index of the node descended into.
        node: u64,
        /// Depth of that node (root = 0).
        depth: u32,
    },
    /// One mini-batch finished (`finish_batch` published the epoch).
    FinishBatch {
        /// Objects drained in the batch.
        objects: u64,
        /// Node splits resolved while finishing.
        splits: u64,
        /// Wall-clock latency of the whole batch in nanoseconds.
        latency_ns: u64,
    },
    /// A node overflowed and was split.
    Split {
        /// Arena index of the node that split.
        node: u64,
    },
    /// A node's entries were gathered into a scoring block.
    Gather {
        /// Arena index of the gathered node.
        node: u64,
        /// Whether the epoch-stamped block cache served the gather.
        cached: bool,
    },
    /// One refinement round of an anytime query completed.
    RefineStep {
        /// Refinement round number (1-based).
        round: u32,
        /// Node reads spent so far on this query.
        budget_spent: u64,
        /// Current width of the certified `[lower, upper]` interval.
        bound_width: f64,
        /// Whether the verdict is already certified at this round.
        certified: bool,
    },
    /// A pinned snapshot caught up to the live tree.
    SnapshotRefresh {
        /// Slot-table chunks the refresh kept pinned unchanged.
        chunks_reused: u64,
        /// Slot-table chunks that had to be re-pinned.
        chunks_refreshed: u64,
        /// Epoch pages kept pinned unchanged.
        pages_reused: u64,
        /// Epoch pages replaced or newly picked up.
        pages_refreshed: u64,
    },
}

/// Receives every trace event while tracing is enabled.
///
/// Implementations must be cheap and non-blocking; they are called from
/// descent/query worker threads.
pub trait TraceSubscriber: Send + Sync {
    /// Delivers one event.
    fn record(&self, event: &TraceEvent);
}

/// A bounded in-memory event buffer — the default subscriber.
///
/// When full, the oldest event is dropped and counted in
/// [`TraceRing::dropped`]; the ring never blocks a recording thread
/// beyond its short mutex.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Removes and returns every buffered event, oldest first.
    #[must_use]
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.events
            .lock()
            .expect("trace ring poisoned")
            .drain(..)
            .collect()
    }

    /// Number of currently buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace ring poisoned").len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl TraceSubscriber for TraceRing {
    fn record(&self, event: &TraceEvent) {
        let mut events = self.events.lock().expect("trace ring poisoned");
        if events.len() >= self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event.clone());
    }
}

static TRACING: AtomicBool = AtomicBool::new(false);

fn subscriber_slot() -> &'static RwLock<Option<Arc<dyn TraceSubscriber>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn TraceSubscriber>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// The process-global default ring (capacity 4096) that receives events
/// when no custom subscriber is installed.
#[must_use]
pub fn trace_ring() -> &'static TraceRing {
    static RING: OnceLock<TraceRing> = OnceLock::new();
    RING.get_or_init(|| TraceRing::new(4096))
}

/// Whether span tracing is currently on (default: off).
#[inline]
#[must_use]
pub fn tracing() -> bool {
    metrics_compiled() && TRACING.load(Ordering::Relaxed)
}

/// Turns span tracing on or off process-wide.
///
/// Has no effect when the `metrics` feature is compiled out.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Replaces the trace subscriber (`None` restores the default ring).
pub fn set_trace_subscriber(subscriber: Option<Arc<dyn TraceSubscriber>>) {
    *subscriber_slot().write().expect("subscriber poisoned") = subscriber;
}

/// Emits one trace event if tracing is on.
///
/// The event is built by the closure only after the enabled check, so a
/// disabled trace costs one relaxed load and a branch.
#[inline]
pub fn trace(event: impl FnOnce() -> TraceEvent) {
    if !tracing() {
        return;
    }
    let event = event();
    let slot = subscriber_slot().read().expect("subscriber poisoned");
    match &*slot {
        Some(subscriber) => subscriber.record(&event),
        None => trace_ring().record(&event),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let ring = TraceRing::new(2);
        for node in 0..5 {
            ring.record(&TraceEvent::Split { node });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let events = ring.drain();
        assert_eq!(
            events,
            vec![TraceEvent::Split { node: 3 }, TraceEvent::Split { node: 4 }]
        );
        assert!(ring.is_empty());
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn events_reach_a_custom_subscriber_only_while_tracing() {
        let ring = Arc::new(TraceRing::new(16));
        set_trace_subscriber(Some(ring.clone()));
        trace(|| TraceEvent::Split { node: 1 });
        assert!(ring.is_empty(), "tracing starts disabled");
        set_tracing(true);
        trace(|| TraceEvent::Split { node: 2 });
        set_tracing(false);
        set_trace_subscriber(None);
        assert_eq!(ring.drain(), vec![TraceEvent::Split { node: 2 }]);
    }
}
