//! Refinement (improvement) strategies across the per-class trees.
//!
//! One Bayes tree is built per class, so in each time step the classifier
//! must decide *which class's* model to refine next.  The paper's extensive
//! experiments found refining the `k` currently most probable classes in
//! turns (`qbk`) to perform best, with `k = min{2, floor(log2 m)}` for `m`
//! classes; the evaluation of Section 3.2 uses `k = 2` throughout.
//! Round-robin over all classes and always refining the single most probable
//! class are provided as ablation baselines.

/// Strategy for choosing which class tree refines its model next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefinementStrategy {
    /// Refine the `k` most probable classes in turns (`qbk`).  `k = None`
    /// uses the paper's rule `min(2, floor(log2 m)).max(1)`.
    Qbk {
        /// Number of candidate classes; `None` selects the paper's default.
        k: Option<usize>,
    },
    /// Refine every class in a fixed round-robin order.
    RoundRobin,
    /// Always refine the currently most probable class.
    MostProbable,
}

impl Default for RefinementStrategy {
    fn default() -> Self {
        RefinementStrategy::Qbk { k: None }
    }
}

impl RefinementStrategy {
    /// The paper's default `k` for `num_classes` classes.
    #[must_use]
    pub fn default_k(num_classes: usize) -> usize {
        let log = (num_classes.max(1) as f64).log2().floor() as usize;
        log.clamp(1, 2)
    }

    /// Short identifier used in reports.
    #[must_use]
    pub fn short_name(&self) -> String {
        match self {
            RefinementStrategy::Qbk { k: None } => "qbk".to_string(),
            RefinementStrategy::Qbk { k: Some(k) } => format!("qb{k}"),
            RefinementStrategy::RoundRobin => "rr".to_string(),
            RefinementStrategy::MostProbable => "top1".to_string(),
        }
    }
}

/// Round-based scheduler implementing the refinement strategies.
///
/// The scheduler is fed the current per-class posterior scores and which
/// class trees can still be refined, and answers with the class whose tree
/// should spend the next node read.
#[derive(Debug, Clone)]
pub struct RefinementScheduler {
    strategy: RefinementStrategy,
    num_classes: usize,
    turn: usize,
}

impl RefinementScheduler {
    /// Creates a scheduler for `num_classes` classes.
    #[must_use]
    pub fn new(strategy: RefinementStrategy, num_classes: usize) -> Self {
        Self {
            strategy,
            num_classes,
            turn: 0,
        }
    }

    /// The effective `k` used by the qbk strategy.
    #[must_use]
    pub fn effective_k(&self) -> usize {
        match self.strategy {
            RefinementStrategy::Qbk { k } => k
                .unwrap_or_else(|| RefinementStrategy::default_k(self.num_classes))
                .clamp(1, self.num_classes.max(1)),
            RefinementStrategy::RoundRobin => self.num_classes,
            RefinementStrategy::MostProbable => 1,
        }
    }

    /// Chooses the class to refine next, or `None` when no class is
    /// refinable.
    ///
    /// `scores[c]` is the current (unnormalised) posterior of class `c`;
    /// `refinable[c]` says whether that class's frontier can still be
    /// refined.
    pub fn next_class(&mut self, scores: &[f64], refinable: &[bool]) -> Option<usize> {
        debug_assert_eq!(scores.len(), self.num_classes);
        debug_assert_eq!(refinable.len(), self.num_classes);
        if !refinable.iter().any(|&r| r) {
            return None;
        }
        let choice = match self.strategy {
            RefinementStrategy::RoundRobin => {
                // Walk from the current turn to the next refinable class.
                (0..self.num_classes)
                    .map(|offset| (self.turn + offset) % self.num_classes)
                    .find(|&c| refinable[c])
            }
            RefinementStrategy::MostProbable => {
                best_refinable(scores, refinable, 1).first().copied()
            }
            RefinementStrategy::Qbk { .. } => {
                let k = self.effective_k();
                let candidates = best_refinable(scores, refinable, k);
                if candidates.is_empty() {
                    None
                } else {
                    Some(candidates[self.turn % candidates.len()])
                }
            }
        };
        if choice.is_some() {
            self.turn = self.turn.wrapping_add(1);
        }
        choice
    }
}

/// The (up to) `k` refinable classes with the highest scores, best first.
fn best_refinable(scores: &[f64], refinable: &[bool], k: usize) -> Vec<usize> {
    let mut candidates: Vec<usize> = (0..scores.len()).filter(|&c| refinable[c]).collect();
    candidates.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    candidates.truncate(k.max(1));
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_k_follows_the_paper() {
        assert_eq!(RefinementStrategy::default_k(2), 1);
        assert_eq!(RefinementStrategy::default_k(4), 2);
        assert_eq!(RefinementStrategy::default_k(10), 2);
        assert_eq!(RefinementStrategy::default_k(26), 2);
        assert_eq!(RefinementStrategy::default_k(1), 1);
    }

    #[test]
    fn qbk_alternates_between_top_two() {
        let mut sched = RefinementScheduler::new(RefinementStrategy::Qbk { k: Some(2) }, 4);
        let scores = [0.1, 0.5, 0.3, 0.05];
        let refinable = [true; 4];
        let picks: Vec<usize> = (0..4)
            .map(|_| sched.next_class(&scores, &refinable).unwrap())
            .collect();
        // Top-2 classes are 1 and 2; picks alternate between them.
        assert_eq!(picks, vec![1, 2, 1, 2]);
    }

    #[test]
    fn most_probable_always_picks_the_best() {
        let mut sched = RefinementScheduler::new(RefinementStrategy::MostProbable, 3);
        let scores = [0.2, 0.7, 0.1];
        let refinable = [true, true, true];
        for _ in 0..3 {
            assert_eq!(sched.next_class(&scores, &refinable), Some(1));
        }
    }

    #[test]
    fn round_robin_cycles_over_refinable_classes() {
        let mut sched = RefinementScheduler::new(RefinementStrategy::RoundRobin, 3);
        let scores = [0.0, 0.0, 0.0];
        let refinable = [true, false, true];
        let picks: Vec<usize> = (0..4)
            .map(|_| sched.next_class(&scores, &refinable).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 2, 2, 0]);
    }

    #[test]
    fn exhausted_frontiers_are_skipped() {
        let mut sched = RefinementScheduler::new(RefinementStrategy::Qbk { k: Some(2) }, 3);
        let scores = [0.9, 0.05, 0.05];
        let refinable = [false, true, true];
        let pick = sched.next_class(&scores, &refinable).unwrap();
        assert_ne!(pick, 0);
    }

    #[test]
    fn no_refinable_class_returns_none() {
        let mut sched = RefinementScheduler::new(RefinementStrategy::default(), 2);
        assert_eq!(sched.next_class(&[0.5, 0.5], &[false, false]), None);
    }

    #[test]
    fn short_names() {
        assert_eq!(RefinementStrategy::Qbk { k: None }.short_name(), "qbk");
        assert_eq!(RefinementStrategy::Qbk { k: Some(3) }.short_name(), "qb3");
        assert_eq!(RefinementStrategy::RoundRobin.short_name(), "rr");
        assert_eq!(RefinementStrategy::MostProbable.short_name(), "top1");
    }
}
