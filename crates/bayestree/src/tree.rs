//! The Bayes tree structure (Definition 2).
//!
//! A Bayes tree with fanout parameters `(m, M)` and leaf capacity `(l, L)` is
//! a balanced multidimensional index whose inner entries additionally carry
//! cluster features, so that every level — and more generally every frontier
//! — stores a complete Gaussian mixture model of the entire data at some
//! granularity.
//!
//! Structurally the tree is a thin instantiation of the shared
//! [`bt_anytree::AnytimeTree`] core (node arena, descent, split
//! propagation) with the [`KernelSummary`] payload and raw kernel centres as
//! leaf items.  The structure is built either incrementally
//! ([`crate::insert`]) or by one of the bulk loaders ([`crate::bulk`]).

use crate::node::{
    node_cluster_feature, node_mbr, Entry, Node, NodeId, StoredElement, StoredSummary,
};
use bt_anytree::{AnytimeTree, Summary};
use bt_index::PageGeometry;
use bt_stats::bandwidth::silverman_bandwidth;
use bt_stats::kernel::{GaussianKernel, Kernel};

/// The Bayes tree: an R*-tree–style hierarchy of Gaussian mixture models.
///
/// The stored-mode parameter `E` (default `f64`) selects how entry
/// summaries are *stored*; see [`crate::node`] for the precision contract.
/// [`BayesTreeF32`](crate::BayesTreeF32) is the half-width alias and
/// [`BayesTreeQuantized`](crate::BayesTreeQuantized) the 16-bit
/// block-exponent alias.
#[derive(Debug, Clone)]
pub struct BayesTree<E: StoredElement = f64> {
    core: AnytimeTree<E::Summary, Vec<f64>>,
    num_points: usize,
    bandwidth: Vec<f64>,
}

impl<E: StoredElement> BayesTree<E> {
    /// Creates an empty tree for `dims`-dimensional kernels.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn new(dims: usize, geometry: PageGeometry) -> Self {
        Self {
            core: AnytimeTree::new(dims, geometry),
            num_points: 0,
            bandwidth: vec![1.0; dims],
        }
    }

    /// The 4 KiB-page geometry at this tree's *stored* mode: inner entries
    /// narrow with the stored scalar width
    /// ([`StoredElement::SCALAR_BYTES`]), so an `f32` tree packs roughly
    /// twice — and a [`Quantized`](crate::node::Quantized) tree roughly
    /// four times — the fanout into the same physical page: a shallower
    /// tree where every budgeted node read covers that much more summary
    /// mass.  Leaves hold exact full-width observations in every mode, so
    /// the leaf capacity is unchanged.
    ///
    /// Use [`bt_index::PageGeometry::default_for_dims`] instead when
    /// multiple modes must share one geometry (e.g. structural A/B
    /// comparisons).
    ///
    /// # Panics
    ///
    /// Panics if a 4 KiB page cannot hold at least two entries (very high
    /// `dims`).
    #[must_use]
    pub fn paged_geometry(dims: usize) -> PageGeometry {
        PageGeometry::from_page_size_for_scalar(4096, dims, E::SCALAR_BYTES)
    }

    /// Dimensionality of the stored kernels.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.core.dims()
    }

    /// Fanout / leaf-capacity parameters of the tree.
    #[must_use]
    pub fn geometry(&self) -> PageGeometry {
        self.core.geometry()
    }

    /// Number of stored observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.num_points
    }

    /// Whether the tree stores no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_points == 0
    }

    /// Height of the tree (a single leaf root has height 1).
    #[must_use]
    pub fn height(&self) -> usize {
        self.core.height()
    }

    /// The per-dimension kernel bandwidth used for leaf-level kernels.
    #[must_use]
    pub fn bandwidth(&self) -> &[f64] {
        &self.bandwidth
    }

    /// Overrides the kernel bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth vector has the wrong dimensionality or a
    /// non-positive component.
    pub fn set_bandwidth(&mut self, bandwidth: Vec<f64>) {
        assert_eq!(
            bandwidth.len(),
            self.dims(),
            "bandwidth dimensionality mismatch"
        );
        assert!(
            bandwidth.iter().all(|h| *h > 0.0),
            "bandwidths must be positive"
        );
        self.bandwidth = bandwidth;
    }

    /// Recomputes the kernel bandwidth with Silverman's rule over all stored
    /// observations (the paper's data-independent default).
    pub fn fit_bandwidth(&mut self) {
        let points = self.all_points();
        if !points.is_empty() {
            self.bandwidth = silverman_bandwidth(&points, self.dims());
        }
    }

    /// The arena index of the root node.
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.core.root()
    }

    /// Read access to a node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node<E> {
        self.core.node(id)
    }

    /// Number of nodes reachable from the root.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.core.num_nodes()
    }

    /// All observations stored at leaf level (in arbitrary order).
    #[must_use]
    pub fn all_points(&self) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(self.num_points);
        for id in self.core.reachable() {
            if let bt_anytree::NodeKind::Leaf { items } = &self.core.node(id).kind {
                out.extend(items.iter().cloned());
            }
        }
        out
    }

    /// The entries the anytime descent starts from: the root's entries, or a
    /// synthetic single entry summarising the root when the root is a leaf.
    #[must_use]
    pub fn root_entries(&self) -> Vec<Entry<E>> {
        match &self.core.node(self.root()).kind {
            bt_anytree::NodeKind::Inner { entries } => entries.clone(),
            bt_anytree::NodeKind::Leaf { items } => {
                if items.is_empty() {
                    Vec::new()
                } else {
                    vec![self.summarise(self.root())]
                }
            }
        }
    }

    /// Builds the entry (MBR + CF + pointer) describing `child`.
    ///
    /// # Panics
    ///
    /// Panics if `child` is empty.
    #[must_use]
    pub fn summarise(&self, child: NodeId) -> Entry<E> {
        let model = crate::insert::KernelModel { dims: self.dims() };
        self.core.summarize_node(&model, child)
    }

    /// Evaluates the full kernel density estimate `p(x)` by reading every
    /// leaf kernel — the model the anytime frontier converges to.
    #[must_use]
    pub fn full_kernel_density(&self, x: &[f64]) -> f64 {
        if self.num_points == 0 {
            return 0.0;
        }
        let kernel = GaussianKernel;
        let mut acc = 0.0;
        for id in self.core.reachable() {
            if let bt_anytree::NodeKind::Leaf { items } = &self.core.node(id).kind {
                for p in items {
                    acc += kernel.density(p, x, &self.bandwidth);
                }
            }
        }
        acc / self.num_points as f64
    }

    /// The complete mixture model stored at tree level `level` (0 = root
    /// entries), as `(weight, gaussian)`-style entries.
    ///
    /// Level `height - 1` (and anything deeper) returns one entry per leaf
    /// node; levels beyond the directory return leaf-node summaries rather
    /// than raw kernels.
    #[must_use]
    pub fn level_entries(&self, level: usize) -> Vec<Entry<E>> {
        let mut current = self.root_entries();
        for _ in 0..level {
            let mut next = Vec::new();
            let mut expanded_any = false;
            for e in &current {
                match &self.core.node(e.child).kind {
                    bt_anytree::NodeKind::Inner { entries } => {
                        next.extend(entries.iter().cloned());
                        expanded_any = true;
                    }
                    bt_anytree::NodeKind::Leaf { .. } => next.push(e.clone()),
                }
            }
            current = next;
            if !expanded_any {
                break;
            }
        }
        current
    }

    /// Validates the structural invariants of Definition 2 plus the
    /// consistency of the aggregated statistics.  Returns a description of
    /// the first violation found.
    ///
    /// `require_balanced` should be `true` for iteratively built and
    /// bottom-up bulk-loaded trees; the EM top-down bulk load may legally
    /// produce an unbalanced tree (Section 3.1).
    ///
    /// # Errors
    ///
    /// Returns `Err` with a human-readable description of the violated
    /// invariant.
    pub fn validate(&self, require_balanced: bool) -> Result<(), String> {
        let mut leaf_depths = Vec::new();
        let mut seen_points = 0usize;
        self.validate_node(self.root(), 1, true, &mut leaf_depths, &mut seen_points)?;
        if seen_points != self.num_points {
            return Err(format!(
                "tree claims {} points but {} are reachable",
                self.num_points, seen_points
            ));
        }
        if require_balanced {
            if let (Some(min), Some(max)) = (leaf_depths.iter().min(), leaf_depths.iter().max()) {
                if min != max {
                    return Err(format!(
                        "tree is not balanced: leaf depths range from {min} to {max}"
                    ));
                }
                if *max != self.height() {
                    return Err(format!(
                        "stored height {} does not match actual depth {max}",
                        self.height()
                    ));
                }
            }
        }
        Ok(())
    }

    fn validate_node(
        &self,
        id: NodeId,
        depth: usize,
        is_root: bool,
        leaf_depths: &mut Vec<usize>,
        seen_points: &mut usize,
    ) -> Result<(), String> {
        let geometry = self.geometry();
        let node = self.core.node(id);
        match &node.kind {
            bt_anytree::NodeKind::Leaf { items } => {
                leaf_depths.push(depth);
                *seen_points += items.len();
                if !is_root && items.len() > geometry.max_leaf {
                    return Err(format!(
                        "leaf {id} holds {} observations, capacity is {}",
                        items.len(),
                        geometry.max_leaf
                    ));
                }
                for p in items {
                    if p.len() != self.dims() {
                        return Err(format!("leaf {id} holds a point of wrong dimensionality"));
                    }
                }
                Ok(())
            }
            bt_anytree::NodeKind::Inner { entries } => {
                if entries.is_empty() {
                    return Err(format!("inner node {id} has no entries"));
                }
                if entries.len() > geometry.max_fanout {
                    return Err(format!(
                        "inner node {id} has {} entries, fanout limit is {}",
                        entries.len(),
                        geometry.max_fanout
                    ));
                }
                if !is_root && entries.len() < geometry.min_fanout.min(2) {
                    return Err(format!(
                        "inner node {id} has {} entries, below the minimum",
                        entries.len()
                    ));
                }
                for (i, entry) in entries.iter().enumerate() {
                    if entry.buffer.is_some() {
                        return Err(format!(
                            "entry {i} of node {id} has a hitchhiker buffer (unused here)"
                        ));
                    }
                    let child = self.core.node(entry.child);
                    // The decoded entry box must contain the child's decoded
                    // MBR (both at full width, so the check is representation
                    // agnostic — the outward-rounding contract of every
                    // narrowed mode makes this hold exactly).
                    if let Some(child_mbr) = node_mbr(child) {
                        let entry_mbr = entry
                            .owned_mbr()
                            .ok_or_else(|| format!("entry {i} of node {id} exposes no box"))?;
                        if !entry_mbr.contains_mbr(&child_mbr) {
                            return Err(format!(
                                "entry {i} of node {id} does not contain its child's MBR"
                            ));
                        }
                    }
                    // CF weight must match the number of objects below
                    // (exact in every mode: weights are never quantised).
                    let child_cf = node_cluster_feature(child, self.dims());
                    if (entry.weight() - child_cf.weight()).abs() > 1e-6 {
                        return Err(format!(
                            "entry {i} of node {id} claims {} objects, child holds {}",
                            entry.weight(),
                            child_cf.weight()
                        ));
                    }
                    // Decoded LS must agree with the child's decoded fold up
                    // to the representations' declared quantisation slack
                    // (zero for the lossless-accumulation modes).
                    let entry_cf = entry.exact_cf();
                    let slack = entry.ls_slack() + node_ls_slack(child);
                    for d in 0..self.dims() {
                        let entry_ls = entry_cf.linear_sum()[d];
                        let child_ls = child_cf.linear_sum()[d];
                        if (entry_ls - child_ls).abs() > 1e-4 * (1.0 + child_ls.abs()) + slack {
                            return Err(format!(
                                "entry {i} of node {id}: LS[{d}] inconsistent with child"
                            ));
                        }
                    }
                    self.validate_node(entry.child, depth + 1, false, leaf_depths, seen_points)?;
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Crate-internal construction helpers (used by insert and bulk).
    // ------------------------------------------------------------------

    /// The shared arena-tree core (crate-internal: insertion and bulk
    /// loading build through it).
    pub(crate) fn core_mut(&mut self) -> &mut AnytimeTree<E::Summary, Vec<f64>> {
        &mut self.core
    }

    /// Read access to the shared core (crate-internal: the query engine
    /// refines frontiers through it).
    pub(crate) fn core(&self) -> &AnytimeTree<E::Summary, Vec<f64>> {
        &self.core
    }

    /// Adds a node to the arena and returns its id.
    pub(crate) fn push_node(&mut self, node: Node<E>) -> NodeId {
        self.core.push_node(node)
    }

    /// Mutable access to a node (test-only; production mutation goes through
    /// the shared core's insertion and the bulk loaders).
    #[cfg(test)]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node<E> {
        self.core.node_mut(id)
    }

    /// Replaces the root node id and height (used by bulk loaders).
    pub(crate) fn set_root(&mut self, root: NodeId, height: usize) {
        self.core.set_root(root, height);
    }

    /// Publishes the bulk loaders' assembled nodes as an epoch, so a
    /// freshly bulk-built tree satisfies the same `node_version <= epoch`
    /// snapshot invariant as an incrementally built one.
    pub(crate) fn publish_bulk_epoch(&mut self) {
        self.core.publish_epoch();
    }

    /// Sets the stored observation count (used by bulk loaders).
    pub(crate) fn set_num_points(&mut self, n: usize) {
        self.num_points = n;
    }

    /// Increments the stored observation count (used by insertion).
    pub(crate) fn increment_points(&mut self) {
        self.num_points += 1;
    }

    /// Adds `count` to the stored observation count (used by batched
    /// insertion).
    pub(crate) fn add_points(&mut self, count: usize) {
        self.num_points += count;
    }

    /// Number of payload-summary refresh operations performed by descents so
    /// far — batched insertion refreshes each visited node once per batch,
    /// so it grows this counter strictly slower than sequential insertion.
    #[must_use]
    pub fn summary_refreshes(&self) -> u64 {
        self.core.summary_refreshes()
    }

    /// The published epoch of the versioned arena (batches committed so
    /// far); [`BayesTree::snapshot`](crate::view) pins this value.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// Retired node copies created by copy-on-write so far — zero as long
    /// as no snapshot (and no cloned tree, which shares the arena slots the
    /// same way) overlaps a write.
    #[must_use]
    pub fn retired_nodes(&self) -> u64 {
        self.core.retired_nodes()
    }

    /// Number of live snapshots currently pinning an epoch of this tree.
    #[must_use]
    pub fn pinned_snapshots(&self) -> usize {
        self.core.pinned_snapshots()
    }

    /// Maximum leaf depth below `node` (a leaf has depth 1).  Used by the
    /// bulk loaders to record the height of a freshly assembled tree.
    pub(crate) fn measure_depth(&self, node: NodeId) -> usize {
        self.core.measure_depth(node)
    }
}

/// Total declared LS quantisation slack of a node's own entries (zero for
/// leaves and for lossless-accumulation modes) — the child-side term of the
/// validate tolerance.
fn node_ls_slack<S: StoredSummary>(node: &bt_anytree::Node<S, Vec<f64>>) -> f64 {
    match &node.kind {
        bt_anytree::NodeKind::Leaf { .. } => 0.0,
        bt_anytree::NodeKind::Inner { entries } => entries.iter().map(|e| e.ls_slack()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> PageGeometry {
        PageGeometry::from_fanout(4, 4)
    }

    #[test]
    fn empty_tree_basics() {
        let tree: BayesTree = BayesTree::new(3, geometry());
        assert_eq!(tree.dims(), 3);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.num_nodes(), 1);
        assert!(tree.root_entries().is_empty());
        assert_eq!(tree.full_kernel_density(&[0.0, 0.0, 0.0]), 0.0);
        assert!(tree.validate(true).is_ok());
    }

    #[test]
    fn set_bandwidth_validates() {
        let mut tree: BayesTree = BayesTree::new(2, geometry());
        tree.set_bandwidth(vec![0.5, 0.25]);
        assert_eq!(tree.bandwidth(), &[0.5, 0.25]);
    }

    #[test]
    #[should_panic(expected = "bandwidth dimensionality mismatch")]
    fn wrong_bandwidth_dims_panics() {
        let mut tree: BayesTree = BayesTree::new(2, geometry());
        tree.set_bandwidth(vec![0.5]);
    }

    #[test]
    fn summarise_leaf_root() {
        let mut tree: BayesTree = BayesTree::new(1, geometry());
        tree.node_mut(0).items_mut().push(vec![1.0]);
        tree.node_mut(0).items_mut().push(vec![3.0]);
        tree.set_num_points(2);
        let entries = tree.root_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].weight(), 2.0);
        assert_eq!(entries[0].cf.mean(), vec![2.0]);
    }

    #[test]
    fn full_kernel_density_averages_kernels() {
        let mut tree: BayesTree = BayesTree::new(1, geometry());
        tree.node_mut(0).items_mut().push(vec![-1.0]);
        tree.node_mut(0).items_mut().push(vec![1.0]);
        tree.set_num_points(2);
        tree.set_bandwidth(vec![1.0]);
        let d = tree.full_kernel_density(&[0.0]);
        let kernel = GaussianKernel;
        let expected = kernel.density(&[-1.0], &[0.0], &[1.0]);
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn validate_detects_wrong_point_count() {
        let mut tree: BayesTree = BayesTree::new(1, geometry());
        tree.node_mut(0).items_mut().push(vec![1.0]);
        // num_points deliberately not incremented.
        let err = tree.validate(true).unwrap_err();
        assert!(err.contains("reachable"));
    }
}
