//! Anytime accuracy curves (the measurement behind Figures 2–4).
//!
//! The paper's protocol: 4-fold cross validation; after building the
//! per-class Bayes trees with a given construction method, every test object
//! is classified and the decision is recorded after *every* node read from 0
//! to 100; the figures plot the resulting accuracy against the number of
//! nodes, averaged over the folds.

use bayestree::{
    AnytimeClassifier, BulkLoadMethod, ClassifierConfig, DescentStrategy, RefinementStrategy,
    SingleTreeClassifier, SingleTreeConfig,
};
use bt_data::{stratified_folds, Dataset};
use bt_index::PageGeometry;

/// Configuration of one anytime-accuracy measurement.
#[derive(Debug, Clone)]
pub struct CurveConfig {
    /// Largest node budget on the x-axis (the paper plots 0..100).
    pub max_nodes: usize,
    /// Number of cross-validation folds (the paper uses 4).
    pub folds: usize,
    /// Seed for fold assignment and the randomised bulk loads.
    pub seed: u64,
    /// Descent strategy within each tree.
    pub descent: DescentStrategy,
    /// Refinement strategy across the class trees.
    pub refinement: RefinementStrategy,
    /// Page geometry; `None` uses a 4 KiB page for the data's dimensionality.
    pub geometry: Option<PageGeometry>,
    /// Upper bound on the number of test objects evaluated per fold
    /// (`None` = all).  Keeps debug-build tests fast; release benchmarks use
    /// `None`.
    pub max_test_queries: Option<usize>,
}

impl Default for CurveConfig {
    fn default() -> Self {
        Self {
            max_nodes: 100,
            folds: 4,
            seed: 42,
            descent: DescentStrategy::default(),
            refinement: RefinementStrategy::default(),
            geometry: None,
            max_test_queries: None,
        }
    }
}

/// An anytime accuracy curve: accuracy after each node read, averaged over
/// the folds.
#[derive(Debug, Clone)]
pub struct AccuracyCurve {
    /// Label of the curve (construction method, optionally the descent).
    pub label: String,
    /// `accuracy[t]` is the mean accuracy after `t` node reads.
    pub accuracy: Vec<f64>,
    /// Accuracy of the fully expanded model (every frontier exhausted).
    pub final_accuracy: f64,
}

impl AccuracyCurve {
    /// Accuracy after `nodes` node reads (saturating).
    #[must_use]
    pub fn at(&self, nodes: usize) -> f64 {
        let idx = nodes.min(self.accuracy.len().saturating_sub(1));
        self.accuracy[idx]
    }

    /// The largest accuracy anywhere on the curve.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.accuracy.iter().copied().fold(0.0, f64::max)
    }

    /// Mean accuracy over the whole curve — a scalar summary of anytime
    /// performance.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.accuracy.is_empty() {
            return 0.0;
        }
        self.accuracy.iter().sum::<f64>() / self.accuracy.len() as f64
    }
}

/// Measures the anytime accuracy curve of one construction method on one
/// data set under k-fold cross validation.
#[must_use]
pub fn anytime_accuracy_curve(
    dataset: &Dataset,
    method: BulkLoadMethod,
    config: &CurveConfig,
) -> AccuracyCurve {
    let classifier_config = ClassifierConfig {
        geometry: config.geometry,
        bulk_load: method,
        descent: config.descent,
        refinement: config.refinement,
        per_class_bandwidth: true,
        seed: config.seed,
    };
    let folds = stratified_folds(dataset, config.folds, config.seed);

    let mut correct = vec![0usize; config.max_nodes + 1];
    let mut total = 0usize;
    let mut final_correct = 0usize;

    for fold in &folds {
        let train = fold.train_set(dataset);
        let test = fold.test_set(dataset);
        let classifier = AnytimeClassifier::train(&train, &classifier_config);
        let limit = config
            .max_test_queries
            .unwrap_or(test.len())
            .min(test.len());
        for i in 0..limit {
            let trace = classifier.anytime_trace(test.feature(i), config.max_nodes);
            let truth = test.label(i);
            for (t, c) in correct.iter_mut().enumerate() {
                if trace.label_after(t) == truth {
                    *c += 1;
                }
            }
            if *trace.labels.last().expect("non-empty trace") == truth {
                final_correct += 1;
            }
            total += 1;
        }
    }

    let total = total.max(1);
    AccuracyCurve {
        label: method.name().to_string(),
        accuracy: correct.iter().map(|&c| c as f64 / total as f64).collect(),
        final_accuracy: final_correct as f64 / total as f64,
    }
}

/// Measures the curves of Figure 2 / Figure 3: the four construction methods
/// of the paper on one workload, with global-best descent and qbk.
#[must_use]
pub fn figure_curves(dataset: &Dataset, config: &CurveConfig) -> Vec<AccuracyCurve> {
    BulkLoadMethod::paper_figures()
        .into_iter()
        .map(|m| anytime_accuracy_curve(dataset, m, config))
        .collect()
}

/// Measures the curves of Figure 4: EMTopDown / Hilbert / iterative insertion
/// under both global-best (`glo`) and breadth-first (`bft`) descent.
#[must_use]
pub fn figure4_curves(dataset: &Dataset, config: &CurveConfig) -> Vec<AccuracyCurve> {
    let methods = [
        BulkLoadMethod::EmTopDown,
        BulkLoadMethod::Hilbert,
        BulkLoadMethod::Iterative,
    ];
    let descents = [
        (DescentStrategy::default(), "glo"),
        (DescentStrategy::BreadthFirst, "bft"),
    ];
    let mut curves = Vec::new();
    for method in methods {
        for (descent, descent_name) in descents {
            // The paper only shows Iterativ with glo in Figure 4.
            if method == BulkLoadMethod::Iterative && descent_name == "bft" {
                continue;
            }
            let cfg = CurveConfig {
                descent,
                ..config.clone()
            };
            let mut curve = anytime_accuracy_curve(dataset, method, &cfg);
            curve.label = format!("{} {}", method.name(), descent_name);
            curves.push(curve);
        }
    }
    curves
}

/// Measures the anytime accuracy curve of the single-tree multi-class
/// classifier when its tree is *constructed in mini-batches* of
/// `batch_size` through the batched descent engine
/// ([`bayestree::SingleTreeClassifier::train_batched`]), under k-fold cross
/// validation.  A batch size of 1 reproduces the sequential construction
/// exactly; larger batches amortise summary refreshes and splits and may
/// group leaves differently.
#[must_use]
pub fn batched_construction_curve(
    dataset: &Dataset,
    batch_size: usize,
    config: &CurveConfig,
) -> AccuracyCurve {
    let single_config = SingleTreeConfig {
        geometry: config.geometry,
        descent: config.descent,
        entropy_weighted_descent: false,
    };
    let folds = stratified_folds(dataset, config.folds, config.seed);

    let mut correct = vec![0usize; config.max_nodes + 1];
    let mut total = 0usize;
    let mut final_correct = 0usize;

    for fold in &folds {
        let train = fold.train_set(dataset);
        let test = fold.test_set(dataset);
        let classifier = SingleTreeClassifier::train_batched(&train, &single_config, batch_size);
        let limit = config
            .max_test_queries
            .unwrap_or(test.len())
            .min(test.len());
        for i in 0..limit {
            let trace = classifier.anytime_trace(test.feature(i), config.max_nodes);
            let truth = test.label(i);
            let label_after = |t: usize| trace[t.min(trace.len() - 1)];
            for (t, c) in correct.iter_mut().enumerate() {
                if label_after(t) == truth {
                    *c += 1;
                }
            }
            if *trace.last().expect("non-empty trace") == truth {
                final_correct += 1;
            }
            total += 1;
        }
    }

    let total = total.max(1);
    AccuracyCurve {
        label: format!("single-tree batch {batch_size}"),
        accuracy: correct.iter().map(|&c| c as f64 / total as f64).collect(),
        final_accuracy: final_correct as f64 / total as f64,
    }
}

/// Batched-construction curves at several mini-batch sizes (the engine's
/// batching axis; 1/8/64 is the canonical sweep).
#[must_use]
pub fn batched_construction_curves(
    dataset: &Dataset,
    batch_sizes: &[usize],
    config: &CurveConfig,
) -> Vec<AccuracyCurve> {
    batch_sizes
        .iter()
        .map(|&b| batched_construction_curve(dataset, b, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_data::synth::blobs::BlobConfig;

    fn small_dataset() -> Dataset {
        BlobConfig::new(3, 4)
            .samples_per_class(60)
            .seed(5)
            .generate()
    }

    fn fast_config() -> CurveConfig {
        CurveConfig {
            max_nodes: 12,
            folds: 3,
            geometry: Some(PageGeometry::from_fanout(4, 6)),
            max_test_queries: Some(25),
            ..CurveConfig::default()
        }
    }

    #[test]
    fn curve_has_one_point_per_budget() {
        let curve =
            anytime_accuracy_curve(&small_dataset(), BulkLoadMethod::Iterative, &fast_config());
        assert_eq!(curve.accuracy.len(), 13);
        assert!(curve.accuracy.iter().all(|a| (0.0..=1.0).contains(a)));
        assert!(curve.final_accuracy > 0.5);
    }

    #[test]
    fn accuracy_improves_or_holds_with_budget_on_easy_data() {
        let curve =
            anytime_accuracy_curve(&small_dataset(), BulkLoadMethod::EmTopDown, &fast_config());
        assert!(curve.at(12) + 0.1 >= curve.at(0), "{:?}", curve.accuracy);
        assert!(curve.peak() > 0.8);
    }

    #[test]
    fn figure_curves_produce_four_labelled_curves() {
        let curves = figure_curves(&small_dataset(), &fast_config());
        assert_eq!(curves.len(), 4);
        let labels: Vec<&str> = curves.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"EMTopDown"));
        assert!(labels.contains(&"Iterativ"));
    }

    #[test]
    fn figure4_curves_cover_both_descents() {
        let curves = figure4_curves(&small_dataset(), &fast_config());
        assert_eq!(curves.len(), 5);
        assert!(curves.iter().any(|c| c.label == "EMTopDown glo"));
        assert!(curves.iter().any(|c| c.label == "EMTopDown bft"));
        assert!(curves.iter().any(|c| c.label == "Iterativ glo"));
    }

    #[test]
    fn batched_construction_curves_cover_the_batch_sizes() {
        let curves = batched_construction_curves(&small_dataset(), &[1, 8, 64], &fast_config());
        assert_eq!(curves.len(), 3);
        for curve in &curves {
            assert_eq!(curve.accuracy.len(), 13);
            assert!(curve.accuracy.iter().all(|a| (0.0..=1.0).contains(a)));
            // Blobs are easy: any construction should classify well with
            // full budget.
            assert!(curve.final_accuracy > 0.6, "{}", curve.label);
        }
        assert_eq!(curves[0].label, "single-tree batch 1");
        assert_eq!(curves[2].label, "single-tree batch 64");
    }

    #[test]
    fn curve_summary_statistics() {
        let curve = AccuracyCurve {
            label: "x".to_string(),
            accuracy: vec![0.5, 0.7, 0.9],
            final_accuracy: 0.9,
        };
        assert_eq!(curve.at(0), 0.5);
        assert_eq!(curve.at(100), 0.9);
        assert_eq!(curve.peak(), 0.9);
        assert!((curve.mean() - 0.7).abs() < 1e-12);
    }
}
