//! Pipelined insert+query sweeps: concurrent reader/writer throughput
//! versus shard count.
//!
//! The epoch-versioned snapshot layer's promise is that **readers do not
//! block writers**: a pinned snapshot answers density queries bit-identical
//! to the pre-batch state while the per-shard writers drain the next
//! mini-batch, and the only cost the writers pay is one copy-on-write per
//! node still pinned.  This sweep measures both sides of that trade at
//! shard counts 1/2/4/8:
//!
//! * the **solo** insert throughput (plain [`ShardedBayesTree::insert_batch`]
//!   with nobody reading),
//! * the **pipelined** insert throughput (the same stream through
//!   [`ShardedBayesTree::pipelined_batch`] with a query batch refining
//!   against the pre-batch snapshot during every mini-batch),
//! * the queries answered per second while inserting, and the writer's
//!   throughput ratio (pipelined / solo — ≥ 0.8 is the bench's smoke
//!   threshold on multi-core runners).

use bayestree::{DescentStrategy, ShardedBayesTree};
use bt_anytree::QueryStats;
use bt_index::PageGeometry;
use std::time::Instant;

use crate::obs::{cache_columns, CACHE_COLUMNS_HEADER, CACHE_COLUMNS_RULE};

/// Concurrent insert+query throughput at one shard count.
#[derive(Debug, Clone)]
pub struct PipelinedThroughput {
    /// Number of shards the index was spread over.
    pub shards: usize,
    /// Insert throughput with nobody reading (objects per second).
    pub solo_inserts_per_sec: f64,
    /// Insert throughput while readers refine against pre-batch snapshots
    /// (objects per second).
    pub pipelined_inserts_per_sec: f64,
    /// Snapshot queries answered per second while inserting.
    pub queries_per_sec: f64,
    /// Mean bound width of the answered queries.
    pub mean_uncertainty: f64,
    /// Retired node copies the writers paid for copy-on-write, across all
    /// shards (zero in the solo run).
    pub retired_nodes: u64,
    /// Fraction of node-block scorings the snapshot readers served from the
    /// epoch-stamped block cache, merged over every shard and mini-batch
    /// (0.0 when no blocks were gathered at all).
    pub gather_hit_rate: f64,
    /// Software prefetches the snapshot readers issued for upcoming
    /// frontier candidates, merged over every shard and mini-batch.
    pub prefetches: u64,
}

impl PipelinedThroughput {
    /// The writer's throughput ratio under concurrent readers
    /// (pipelined / solo; 1.0 = readers are free).
    #[must_use]
    pub fn writer_ratio(&self) -> f64 {
        if self.solo_inserts_per_sec <= 0.0 {
            1.0
        } else {
            self.pipelined_inserts_per_sec / self.solo_inserts_per_sec
        }
    }
}

/// Sweeps concurrent insert+query throughput over `shard_counts`: for each
/// count the same stream is inserted once solo and once pipelined (every
/// mini-batch overlapped with `queries` against the pre-batch snapshot).
///
/// # Panics
///
/// Panics if `points` or `queries` is empty, `batch_size` is 0 or any shard
/// count is 0.
#[must_use]
pub fn pipelined_sweep(
    points: &[Vec<f64>],
    queries: &[Vec<f64>],
    shard_counts: &[usize],
    batch_size: usize,
    query_budget: usize,
    geometry: PageGeometry,
) -> Vec<PipelinedThroughput> {
    assert!(!points.is_empty(), "need training points");
    assert!(!queries.is_empty(), "need query points");
    assert!(batch_size > 0, "need a positive batch size");
    let dims = points[0].len();
    shard_counts
        .iter()
        .map(|&shards| {
            // Solo baseline: same stream, nobody reading.
            let mut solo: ShardedBayesTree = ShardedBayesTree::new(dims, geometry, shards);
            let start = Instant::now();
            for chunk in points.chunks(batch_size) {
                let _ = solo.insert_batch(chunk.to_vec());
            }
            let solo_secs = start.elapsed().as_secs_f64().max(1e-9);

            // Pipelined: every mini-batch overlaps with the query workload
            // refining against the pre-batch snapshot.
            let mut tree: ShardedBayesTree = ShardedBayesTree::new(dims, geometry, shards);
            let mut answered = 0usize;
            let mut uncertainty_sum = 0.0;
            let mut reader_stats = QueryStats::default();
            let start = Instant::now();
            for chunk in points.chunks(batch_size) {
                let outcome = tree.pipelined_batch(
                    chunk.to_vec(),
                    queries,
                    DescentStrategy::default(),
                    query_budget,
                );
                answered += outcome.answers.len();
                uncertainty_sum += outcome
                    .answers
                    .iter()
                    .map(bt_anytree::ShardedQueryAnswer::uncertainty)
                    .sum::<f64>();
                reader_stats.merge(&outcome.query_stats);
            }
            let pipelined_secs = start.elapsed().as_secs_f64().max(1e-9);
            let retired_nodes = tree
                .shards()
                .iter()
                .map(bt_anytree::AnytimeTree::retired_nodes)
                .sum();

            PipelinedThroughput {
                shards,
                solo_inserts_per_sec: points.len() as f64 / solo_secs,
                pipelined_inserts_per_sec: points.len() as f64 / pipelined_secs,
                queries_per_sec: answered as f64 / pipelined_secs,
                mean_uncertainty: uncertainty_sum / answered.max(1) as f64,
                retired_nodes,
                gather_hit_rate: reader_stats.gather_hit_rate(),
                prefetches: reader_stats.prefetches,
            }
        })
        .collect()
}

/// Formats a pipelined sweep as aligned text.  The reader-side cache and
/// prefetch counters ride along so one table shows both what the writers
/// paid (retired copies) and what the readers saved (cached blocks,
/// prefetched pages); the hit rate is already guarded against the
/// zero-gather case by [`QueryStats::gather_hit_rate`].
#[must_use]
pub fn format_pipelined_sweep(rows: &[PipelinedThroughput]) -> String {
    let mut out = format!(
        "shards  solo-ins/s  piped-ins/s  ratio  queries/s  uncertainty  retired  {CACHE_COLUMNS_HEADER}\n\
         ------  ----------  -----------  -----  ---------  -----------  -------  {CACHE_COLUMNS_RULE}\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6}  {:>10.0}  {:>11.0}  {:>5.2}  {:>9.0}  {:>11.3e}  {:>7}  {}\n",
            r.shards,
            r.solo_inserts_per_sec,
            r.pipelined_inserts_per_sec,
            r.writer_ratio(),
            r.queries_per_sec,
            r.mean_uncertainty,
            r.retired_nodes,
            cache_columns(r.gather_hit_rate, r.prefetches)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_data::synth::blobs::BlobConfig;

    fn workload() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let dataset = BlobConfig::new(2, 3)
            .samples_per_class(200)
            .seed(23)
            .generate();
        let points = dataset.features().to_vec();
        let queries = points.iter().step_by(40).cloned().collect();
        (points, queries)
    }

    #[test]
    fn pipelined_sweep_reports_both_sides_of_the_trade() {
        let (points, queries) = workload();
        let rows = pipelined_sweep(
            &points,
            &queries,
            &[1, 2, 4],
            64,
            8,
            PageGeometry::from_fanout(4, 6),
        );
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.solo_inserts_per_sec > 0.0);
            assert!(r.pipelined_inserts_per_sec > 0.0);
            assert!(r.queries_per_sec > 0.0, "readers answered while writing");
            assert!(r.writer_ratio() > 0.0);
            // Readers pin pre-batch snapshots, so writers must have paid
            // some copy-on-write — and only while pinned.
            assert!(r.retired_nodes > 0);
            assert!((0.0..=1.0).contains(&r.gather_hit_rate));
        }
        let text = format_pipelined_sweep(&rows);
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("ratio"));
        assert!(
            text.contains("hit-rate") && text.contains("prefetch"),
            "pipelined report surfaces the reader-side cache counters"
        );
    }
}
