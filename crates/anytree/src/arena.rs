//! The epoch-versioned node arena: copy-on-write slots behind stable ids.
//!
//! PR 5 turns the arena from a plain `Vec<Node>` into a versioned store so
//! that **reads and writes overlap without locks on the hot path**:
//!
//! * every node lives in a *slot* (`Arc<VersionedNode>`) addressed by the
//!   same stable [`NodeId`] index as before — child pointers never move,
//! * every node carries a lightweight **version stamp**: the epoch of the
//!   batch that last mutated it ([`VersionedNode::version`]),
//! * mutation is **copy-on-write at node granularity**: writing a node whose
//!   slot is shared with a pinned snapshot first clones that one node into a
//!   fresh allocation ([`std::sync::Arc::make_mut`]) — the snapshot keeps the
//!   retired copy, the tree continues on the new one, and nothing else in
//!   the tree is touched.  With no snapshot pinned the strong count is 1 and
//!   the write happens in place, so the no-reader fast path costs one
//!   atomic load per mutated node,
//! * `finish_batch` **publishes a new root epoch**
//!   ([`NodeArena::publish`]); [`crate::TreeSnapshot`]s pin the published
//!   epoch in a shared [`EpochRegistry`] so writers (and tests) can observe
//!   which epochs are still read,
//! * **reclamation**: a retired node copy is owned only by the snapshot
//!   spines that pinned it, so it is freed exactly when the last snapshot
//!   whose epoch predates the copy's replacement is dropped — the epoch
//!   registry records the pins, the `Arc` drop does the freeing, and no
//!   background collector or extra dependency is needed.

use crate::node::{Node, NodeId};
use crate::summary::Summary;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One arena slot: a node plus the epoch of the batch that last mutated it.
#[derive(Debug, Clone)]
pub struct VersionedNode<S, L> {
    /// The epoch stamp: the (in-flight) epoch of the last mutation, i.e. the
    /// publish that first covered this version of the node.
    pub version: u64,
    /// The node payload.
    pub node: Node<S, L>,
}

/// The shared pin registry: which epochs are still pinned by how many
/// snapshots.
///
/// The registry does not own any node memory — retired copies are reclaimed
/// by the snapshots' `Arc` drops (see the [module docs](crate::arena)) — but
/// it is the single place writers can ask "is anything reading an old
/// epoch?", which makes the copy-on-write fast path observable and testable.
#[derive(Debug, Default)]
pub struct EpochRegistry {
    pinned: Mutex<BTreeMap<u64, usize>>,
}

impl EpochRegistry {
    /// Registers one snapshot pinning `epoch`.
    pub fn pin(&self, epoch: u64) {
        let mut pinned = self.pinned.lock().expect("epoch registry poisoned");
        *pinned.entry(epoch).or_insert(0) += 1;
    }

    /// Releases one snapshot pin of `epoch`.
    pub fn unpin(&self, epoch: u64) {
        let mut pinned = self.pinned.lock().expect("epoch registry poisoned");
        if let Some(count) = pinned.get_mut(&epoch) {
            *count -= 1;
            if *count == 0 {
                pinned.remove(&epoch);
            }
        }
    }

    /// The oldest epoch still pinned by a live snapshot, if any.
    #[must_use]
    pub fn oldest_pinned(&self) -> Option<u64> {
        self.pinned
            .lock()
            .expect("epoch registry poisoned")
            .keys()
            .next()
            .copied()
    }

    /// Number of live snapshot pins across all epochs.
    #[must_use]
    pub fn pinned_count(&self) -> usize {
        self.pinned
            .lock()
            .expect("epoch registry poisoned")
            .values()
            .sum()
    }
}

/// An RAII pin of one epoch in an [`EpochRegistry`]: created when a snapshot
/// is taken, released when the snapshot is dropped.
#[derive(Debug)]
pub struct EpochPin {
    registry: Arc<EpochRegistry>,
    epoch: u64,
}

impl EpochPin {
    /// Pins `epoch` in `registry`.
    #[must_use]
    pub fn new(registry: Arc<EpochRegistry>, epoch: u64) -> Self {
        registry.pin(epoch);
        Self { registry, epoch }
    }

    /// The pinned epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Clone for EpochPin {
    fn clone(&self) -> Self {
        Self::new(Arc::clone(&self.registry), self.epoch)
    }
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.registry.unpin(self.epoch);
    }
}

/// The epoch-versioned node arena.
///
/// Slots are `Arc`-shared with snapshots; mutation goes through
/// [`NodeArena::node_mut`], which copies the node **only** when a snapshot
/// still references it (copy-on-write at node granularity).  Node ids are
/// stable: a copy replaces the `Arc` inside the same slot, so child pointers
/// never need rewriting.
#[derive(Debug)]
pub struct NodeArena<S: Summary, L> {
    slots: Vec<Arc<VersionedNode<S, L>>>,
    /// Number of published epochs (batches closed by [`NodeArena::publish`]).
    epoch: u64,
    registry: Arc<EpochRegistry>,
    /// Retired node copies created by copy-on-write so far.
    retired: u64,
}

impl<S: Summary, L> NodeArena<S, L> {
    /// Creates an arena holding a single empty leaf (the root of a fresh
    /// tree).
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: vec![Arc::new(VersionedNode {
                version: 0,
                node: Node::empty_leaf(),
            })],
            epoch: 0,
            registry: Arc::new(EpochRegistry::default()),
            retired: 0,
        }
    }

    /// Number of slots (including nodes orphaned by bulk loading).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena holds no slots (never true in practice: a fresh
    /// arena holds the empty root leaf).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Read access to a node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node<S, L> {
        &self.slots[id].node
    }

    /// The version stamp of a node: the epoch of the batch that last mutated
    /// it.
    #[must_use]
    pub fn version(&self, id: NodeId) -> u64 {
        self.slots[id].version
    }

    /// The published epoch: the number of batches closed so far.  Snapshots
    /// pin this value.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Publishes the current in-flight epoch (called by `finish_batch`):
    /// every node stamped during the batch becomes part of the new published
    /// root epoch.
    pub fn publish(&mut self) {
        self.epoch += 1;
    }

    /// Number of retired node copies created by copy-on-write so far.  Zero
    /// as long as no snapshot — and no [`Clone`]d tree, which shares the
    /// slots the same way — overlaps a write: the no-sharer fast path never
    /// copies.
    #[must_use]
    pub fn retired_nodes(&self) -> u64 {
        self.retired
    }

    /// The shared epoch registry (snapshots pin their epoch here).
    #[must_use]
    pub fn registry(&self) -> &Arc<EpochRegistry> {
        &self.registry
    }

    /// The slot spine, cloned for a snapshot: `O(len)` pointer copies, no
    /// node payload is touched.
    #[must_use]
    pub fn snapshot_slots(&self) -> Vec<Arc<VersionedNode<S, L>>> {
        self.slots.clone()
    }

    /// Adds a node stamped with the in-flight epoch and returns its id.
    pub fn push(&mut self, node: Node<S, L>) -> NodeId {
        self.slots.push(Arc::new(VersionedNode {
            version: self.epoch + 1,
            node,
        }));
        self.slots.len() - 1
    }
}

impl<S: Summary + Clone, L: Clone> NodeArena<S, L> {
    /// Mutable access to a node — the copy-on-write point.
    ///
    /// If the slot is shared with a pinned snapshot the node is cloned into
    /// a fresh allocation first (the snapshot keeps the retired copy);
    /// otherwise the write happens in place.  Either way the node is stamped
    /// with the in-flight epoch (`published + 1`).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node<S, L> {
        let slot = &mut self.slots[id];
        if Arc::strong_count(slot) > 1 {
            self.retired += 1;
        }
        let versioned = Arc::make_mut(slot);
        versioned.version = self.epoch + 1;
        &mut versioned.node
    }
}

impl<S: Summary, L> Default for NodeArena<S, L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Summary, L> Clone for NodeArena<S, L> {
    /// Cloning an arena shares the node slots copy-on-write (cheap: pointer
    /// copies only) but starts a **fresh registry**: snapshots of the clone
    /// pin the clone's registry, not the original's.  Mutating either tree
    /// copies shared nodes on first write, so the two trees stay isolated.
    fn clone(&self) -> Self {
        Self {
            slots: self.slots.clone(),
            epoch: self.epoch,
            registry: Arc::new(EpochRegistry::default()),
            retired: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    #[derive(Debug, Clone)]
    struct W(f64);

    impl Summary for W {
        type Ctx = ();
        fn merge(&mut self, other: &Self, _ctx: ()) {
            self.0 += other.0;
        }
        fn weight(&self) -> f64 {
            self.0
        }
        fn sq_dist_to(&self, _point: &[f64]) -> f64 {
            0.0
        }
        fn center(&self) -> Vec<f64> {
            Vec::new()
        }
    }

    fn leaf_items(arena: &NodeArena<W, u32>, id: NodeId) -> Vec<u32> {
        match &arena.node(id).kind {
            NodeKind::Leaf { items } => items.clone(),
            NodeKind::Inner { .. } => panic!("expected leaf"),
        }
    }

    #[test]
    fn in_place_mutation_without_snapshots_retires_nothing() {
        let mut arena: NodeArena<W, u32> = NodeArena::new();
        for i in 0..10 {
            arena.node_mut(0).items_mut().push(i);
        }
        assert_eq!(arena.retired_nodes(), 0);
        assert_eq!(leaf_items(&arena, 0), (0..10).collect::<Vec<_>>());
        assert_eq!(arena.version(0), 1);
    }

    #[test]
    fn pinned_spine_forces_one_copy_then_writes_in_place() {
        let mut arena: NodeArena<W, u32> = NodeArena::new();
        arena.node_mut(0).items_mut().push(1);
        arena.publish();
        let spine = arena.snapshot_slots();
        // First write after the snapshot copies the node once...
        arena.node_mut(0).items_mut().push(2);
        assert_eq!(arena.retired_nodes(), 1);
        // ...subsequent writes hit the fresh copy in place.
        arena.node_mut(0).items_mut().push(3);
        assert_eq!(arena.retired_nodes(), 1);
        // The pinned spine still sees the pre-snapshot state.
        assert_eq!(spine[0].node.items(), &[1]);
        assert_eq!(spine[0].version, 1);
        assert_eq!(leaf_items(&arena, 0), vec![1, 2, 3]);
        assert_eq!(arena.version(0), 2);
    }

    #[test]
    fn registry_tracks_pins_in_epoch_order() {
        let registry = Arc::new(EpochRegistry::default());
        assert_eq!(registry.oldest_pinned(), None);
        let early = EpochPin::new(Arc::clone(&registry), 3);
        let late = EpochPin::new(Arc::clone(&registry), 7);
        assert_eq!(registry.oldest_pinned(), Some(3));
        assert_eq!(registry.pinned_count(), 2);
        let late_clone = late.clone();
        assert_eq!(registry.pinned_count(), 3);
        drop(early);
        assert_eq!(registry.oldest_pinned(), Some(7));
        drop(late);
        assert_eq!(registry.oldest_pinned(), Some(7), "clone still pins");
        drop(late_clone);
        assert_eq!(registry.oldest_pinned(), None);
        assert_eq!(registry.pinned_count(), 0);
    }

    #[test]
    fn cloned_arena_is_isolated_copy_on_write() {
        let mut a: NodeArena<W, u32> = NodeArena::new();
        a.node_mut(0).items_mut().push(1);
        let mut b = a.clone();
        b.node_mut(0).items_mut().push(2);
        assert_eq!(leaf_items(&a, 0), vec![1]);
        assert_eq!(leaf_items(&b, 0), vec![1, 2]);
    }
}
