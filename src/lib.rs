//! # Anytime Stream Mining
//!
//! A Rust reproduction of *"Using Index Structures for Anytime Stream Mining"*
//! (Philipp Kranen, VLDB 2009): the **Bayes tree** anytime classifier, its
//! bulk-loading strategies, and the anytime stream-clustering extension.
//!
//! This facade crate re-exports the workspace crates so that examples and
//! downstream users can depend on a single package:
//!
//! * [`stats`] — Gaussians, kernel density estimation, cluster features,
//!   mixture models, EM, KL divergence and Goldberger mixture reduction.
//! * [`index`] — MBRs, R*-tree machinery, space-filling curves and STR packing.
//! * [`obs`] — the observability layer: a lock-free metrics registry
//!   (counters, gauges, log-bucketed histograms), bounded span tracing for
//!   the refinement lifecycle, and Prometheus/JSON exposition.
//! * [`anytree`] — the shared anytime-index core (see *Architecture* below).
//! * [`data`] — data sets, synthetic workload generators, folds and stream
//!   simulators.
//! * [`bayestree`] — the Bayes tree itself: anytime probability density
//!   queries, descent strategies, the qbk anytime classifier and bulk loaders.
//! * [`clustree`] — the anytime stream-clustering extension (ClusTree-style).
//! * [`eval`] — the experiment harness that regenerates the paper's figures.
//!
//! ## Architecture
//!
//! The paper's central observation is that the Bayes tree "is essentially an
//! index structure", and that the stream-clustering extension is the *same*
//! index with micro-clusters instead of kernels.  The workspace is layered
//! accordingly:
//!
//! ```text
//! stats ──► index ──► anytree{descent, query, shard} ──► { bayestree, clustree }
//!                       ▲                                         │
//!             obs ──────┘ (metrics registry,    data ─────────────┤
//!                          tracing, exposition)                   ▼
//!                                                       eval ──► bench
//! ```
//!
//! * **`stats`** owns the statistical substrate (cluster features,
//!   Gaussians, EM, KL) with allocation-lean in-place / into-scratch vector
//!   variants for the hot paths.
//! * **`index`** owns the R*-tree geometry: MBRs, page-derived `(m, M)`
//!   fanout, and choose-subtree / topological-split algorithms that are
//!   *payload-generic* (`choose_subtree_by`, `rstar_split_by`).
//! * **`anytree`** is the shared anytime-index core both trees instantiate:
//!   the **epoch-versioned node arena** ([`anytree::arena`] — versioned,
//!   `Arc`-shared slots behind stable `NodeId` indices, copy-on-write at
//!   node granularity), entries generic over a [`anytree::Summary`] payload
//!   (merge / weight / distance / decay + an optional MBR hook into
//!   `index`), budgeted descent with a pluggable step cost, hitchhiker/park
//!   buffers, and split/overflow propagation.
//!   Insertion runs on the **iterative descent engine**
//!   ([`anytree::descent`]): a [`anytree::DescentCursor`] holds one
//!   in-flight insertion (current node, depth, remaining budget, the
//!   carried object with any picked-up hitchhikers) and advances one node
//!   per step — the paper's stop/resume-anywhere anytime contract made
//!   literal, with no recursion on the hot path.  Batches are bracketed by
//!   `begin_batch` / `finish_batch`: within a batch every visited node
//!   refreshes its summaries once, routing reuses one per-tree scratch
//!   buffer, and splits are deferred and resolved **once per node** after
//!   the batch drains (`finish_batch` walks the dirty subtrees bottom-up,
//!   re-splitting until every part fits and growing the root as needed).
//!   [`anytree::AnytimeTree::insert_batch`] reports a reached-leaf vs.
//!   parked-at-depth [`anytree::DepthHistogram`] so callers can observe how
//!   batching shifts parking depth.  The **anytime query engine**
//!   ([`anytree::query`]) mirrors the descent engine on the read side: a
//!   payload-generic [`anytree::QueryModel`] scores directory summaries and
//!   leaf items against a query point, a resumable [`anytree::QueryCursor`]
//!   refines a best-first frontier one node read at a time (the refinement
//!   orderings of Section 2.2 exist exactly once, with per-tree
//!   scratch/frontier reuse and [`anytree::QueryStats`] counters alongside
//!   [`anytree::DescentStats`]), and every partial answer carries certain
//!   `[lower, upper]` bounds that can only tighten with budget — the
//!   monotone anytime contract, property-tested for both trees.
//!   Insert-free workloads plug in with just a `Summary` + `QueryModel`:
//!   anytime **outlier scoring** ([`anytree::AnytimeTree::outlier_score`])
//!   refines the density interval until a threshold verdict is certain.
//!   On top of the engines sits the
//!   **sharding layer** ([`anytree::shard`]): a
//!   [`anytree::ShardedAnytimeTree`] partitions the object space into `K`
//!   independent shard trees behind a pluggable [`anytree::ShardRouter`]
//!   (the extension point — [`anytree::CheapestRouter`] routes to the shard
//!   whose root aggregate is closest, [`anytree::FixedPartitionRouter`]
//!   deals round-robin for equivalence tests, and new routers only
//!   implement one `route(point, aggregates)` method), descends every
//!   shard's share of a mini-batch **in parallel** on scoped threads (one
//!   cursor per shard as the concurrency unit, each shard's `finish_batch`
//!   its single synchronisation point), and merges the per-shard reports
//!   ([`anytree::DepthHistogram::merge`], [`anytree::DescentStats::merge`]).
//!   The query path is sharded the same way: per-shard frontiers refine
//!   concurrently ([`anytree::ShardedAnytimeTree::query_batch`], one worker
//!   per shard over the whole batch) and fold into one global mixture
//!   answer ([`anytree::ShardedQueryAnswer`]) whose bounds inherit each
//!   shard's monotonicity; per-shard object counts
//!   ([`anytree::ShardedAnytimeTree::shard_sizes`]) make router skew
//!   observable ahead of the planned work-stealing layer.  The core is
//!   `Send`/`Sync`-clean by construction — static assertions in
//!   `tests/send_assertions.rs` keep it that way.
//!
//!   **Snapshots and the pipelined mode.**  Reads and writes overlap
//!   without locks: every `finish_batch` publishes a new *root epoch*, and
//!   [`anytree::AnytimeTree::snapshot`] returns an owned, `Send + Sync`
//!   [`anytree::TreeSnapshot`] — a clone of the arena's slot spine plus one
//!   pin of the published epoch in the tree's
//!   [`anytree::EpochRegistry`].  Writers mutate through node-granularity
//!   **copy-on-write**: a write to a node some snapshot still references
//!   clones that one node into a fresh slot `Arc` (the snapshot keeps the
//!   retired version), while the no-reader fast path mutates in place (one
//!   atomic check, zero copies — asserted by tests).  The **reclamation
//!   rule**: a retired node version is owned only by the snapshot spines
//!   that pinned it, so its memory is freed *exactly when the last snapshot
//!   taken before the version was replaced is dropped* — the registry
//!   records which epochs are pinned (observability + the tests' fast-path
//!   assertions), the `Arc` drop does the freeing, and no collector or
//!   extra dependency is involved.  The whole query engine runs on the
//!   [`anytree::TreeView`] abstraction, so live trees and snapshots answer
//!   through the same code; frontier selection runs on a **per-order lazy
//!   heap** property-tested against the reference scan.  On the sharded
//!   layer, [`anytree::ShardedAnytimeTree::pipelined_batch`] drains a
//!   mini-batch through per-shard writer threads *while* reader threads
//!   refine query batches against the pre-batch
//!   [`anytree::ShardedTreeSnapshot`] — property-tested to return exactly
//!   the pre-batch answers (`tests/snapshot_isolation.rs`).
//!
//!   **The block-cache layer.**  The hot "score every entry of this node"
//!   step gathers a node's summaries into dimension-major
//!   structure-of-arrays columns ([`anytree::SummaryBlock`]) and runs the
//!   batch kernels of `stats` over all entries in one pass — explicitly
//!   SIMD-vectorised (portable 4-lane `f64` kernels with a
//!   runtime-dispatched AVX2 path and the scalar loop kept as the
//!   bit-exactness reference; `--no-default-features` on `bt-stats` turns
//!   the whole layer off).  On top of the gather sits the **epoch-stamped
//!   per-node block cache**: every arena node carries a
//!   [`anytree::BlockCacheSlot`] page-side next to its version stamp,
//!   holding at most one `Arc`-shared [`anytree::CachedBlock`] of gathered
//!   columns.  The **invalidation rule is the version stamp itself**: a
//!   cached block records the node version it was gathered at, a consumer
//!   compares that stamp against the node's current version, and any
//!   mismatch is simply a miss — mutating a node restamps it (and clears
//!   the slot), so stale blocks are never consumed and no epochs-of-death
//!   bookkeeping is needed.  Copy-on-write completes the picture: retired
//!   node versions keep their slots, so pinned snapshots reuse warm blocks
//!   for free while the live tree repopulates fresh slots at newer epochs.
//!   Scoring hits skip the gather entirely ([`anytree::QueryStats`] counts
//!   `gathers_avoided`), insertion descent reuses the same slot for routing
//!   (repairing the one absorbed entry's columns in place, flagged
//!   routing-only so queries never consume it), and leaf nodes get the same
//!   treatment through [`anytree::QueryModel::score_leaf_items`] — all
//!   bit-identical to the gather-every-time scalar reference in `f64` mode
//!   (`tests/block_cache.rs` in both tree crates).
//!
//!   **The half-width hot path.**  The Bayes tree's stored summaries are
//!   generic over a scalar element (`bayestree::node::StoredElement`):
//!   `f64` is the bit-exact reference mode, `f32` stores MBR corners and
//!   cluster features at half width — accumulating in `f64`, quantising on
//!   write with **outward-rounded** box corners so every stored rectangle
//!   still encloses its subtree and the certain `[lower, upper]` density
//!   bounds stay sound (property-tested in `tests/stored_precision.rs`).
//!   Both modes route through the same R* MINDIST/enlargement machinery via
//!   precision-agnostic corner accessors, leaf observations stay exact
//!   `f64` in every mode, and the page-size fanout derivation
//!   (`index::PageGeometry::from_page_size_for_scalar`) converts the
//!   narrower entries into ~2× fanout per fixed-size page — the capacity
//!   effect `BENCH_8.json` measures.  The batch kernels gain
//!   runtime-dispatched **FMA** variants admitted only by a ULP-bounded
//!   parity suite (`bt_stats::simd`, forced on/off via `BT_STATS_FMA`),
//!   and descent/refinement issue **software prefetches** for the next
//!   frontier candidate's page slot (counted in `QueryStats::prefetches` /
//!   `DescentStats::prefetches` and surfaced by the `eval` report tables).
//!   `docs/PERF.md` tabulates the measured BENCH_6→7→8→9 trajectory and
//!   records the precision contract and the FMA ULP-gate rationale.
//!
//!   **The observability boundary.**  Every layer reports into one
//!   process-global [`obs`] registry without ever putting an atomic on a
//!   hot loop: descent and refinement keep accumulating into the existing
//!   [`anytree::DescentStats`] / [`anytree::QueryStats`] structs (now thin
//!   local views of the metric catalogue), and the `anytree::obs` glue
//!   folds each **batch / query / snapshot-refresh delta** into the
//!   registry's `bt_*` counters, gauges and log-bucketed histograms at the
//!   boundary — one relaxed atomic load when recording is disabled, and
//!   the whole layer compiles away under `--no-default-features` on
//!   `bt-obs`.  The refinement lifecycle additionally emits span-trace
//!   events (`descend`, `finish_batch`, `split`, `gather`, `refine_step`,
//!   `snapshot_refresh`) into a bounded ring or a pluggable subscriber,
//!   and the registry exposes itself as Prometheus text or a JSON snapshot
//!   ([`obs::Snapshot`]) — `eval::obs` brackets workloads with
//!   capture-deltas, `BENCH_9.json` derives certified-queries/sec from the
//!   registry histograms, and `docs/OBSERVABILITY.md` catalogues the
//!   metric names and the cost contract
//!   (`tests/metrics_equivalence.rs` pins recording equivalence across
//!   the live, snapshot and sharded paths).
//! * **`bayestree`** instantiates the core with an MBR + cluster-feature
//!   payload over raw kernel points (classification); **`clustree`**
//!   instantiates it with decaying micro-clusters (clustering).  Each crate
//!   only implements its leaf policy and split flavour — descent, buffering
//!   and split propagation exist exactly once.
//!
//! One core means one place to add sharding, batching and concurrency — and
//! new anytime workloads plug in by implementing `Summary` + `InsertModel`
//! (write side) or `Summary` + `QueryModel` (read side) rather than
//! re-implementing a tree.  Batching is already in: every layer exposes
//! mini-batch entry points over the core engine (`BayesTree::insert_batch`,
//! `AnytimeClassifier::learn_batch`, `SingleTreeClassifier::insert_batch` /
//! `train_batched`, `ClusTree::insert_batch`), and `eval` measures
//! accuracy/purity versus budget at batch sizes 1/8/64.  Sharding is in
//! too: both trees instantiate the sharded layer
//! (`bayestree::ShardedBayesTree`, `clustree::ShardedClusTree` — whose
//! snapshot/offline step simply folds the per-shard micro-clusters),
//! `AnytimeClassifier::train_sharded` builds the per-class trees on worker
//! threads bit-identically to sequential training, `eval::sharding` sweeps
//! quality and wall-clock throughput over shard counts 1/2/4/8, and the
//! `shard_scaling` criterion bench asserts the ≥1.5× 4-shard speedup as a
//! smoke threshold on runners with ≥4 CPUs.  The query layer is in as well:
//! `bayestree` rebases its frontier (`TreeFrontier`) and `pdq` reference on
//! the shared engine and adds budget-bracketed density queries
//! (`BayesTree::anytime_density` / `density_batch`) plus anytime outlier
//! scoring (`BayesTree::outlier_score`); `clustree` adds anytime k-NN
//! micro-cluster retrieval at any tree level (`ClusTree::anytime_knn`) and
//! the same density/outlier scores; both sharded trees answer queries by
//! refining per-shard frontiers in parallel and folding one global mixture;
//! `eval::query` sweeps bound width versus budget (non-increasing, the
//! monotone contract) and sharded query throughput at shards 1/2/4/8; and
//! the `anytime_query` criterion bench asserts refinement convergence plus
//! the ≥1.5× 4-shard query-throughput smoke threshold on ≥4-CPU runners.
//! Snapshot reads are in on every layer: `BayesTree::snapshot`,
//! `ClusTree::snapshot`, both sharded variants and
//! `AnytimeClassifier::snapshot` return epoch-pinned `Send + Sync` views
//! (answers bit-identical to pin time — `tests/snapshot_isolation.rs`),
//! both sharded trees expose `pipelined_batch` (inserts overlapped with
//! snapshot queries), `clustree` stores an optional MBR alongside each
//! micro-cluster CF for distance-aware *upper* density bounds (nested, so
//! the monotone-refinement property tests cover them), `eval::pipeline`
//! sweeps concurrent insert+query throughput at shards 1/2/4/8, and the
//! `pipelined` criterion bench asserts that two concurrent readers cost
//! the writer ≤20% insert throughput on ≥4-CPU runners.
//!
//! ## Quickstart
//!
//! ```
//! use anytime_stream_mining::bayestree::{AnytimeClassifier, ClassifierConfig};
//! use anytime_stream_mining::data::synth::blobs::BlobConfig;
//!
//! // A small synthetic 3-class problem.
//! let dataset = BlobConfig::new(3, 4).samples_per_class(120).seed(7).generate();
//! let (train, test) = dataset.split_holdout(0.25, 42);
//!
//! let classifier = AnytimeClassifier::train(&train, &ClassifierConfig::default());
//! // Classify with a budget of 20 node reads — more budget, better model.
//! let mut correct = 0usize;
//! for (x, y) in test.iter() {
//!     if classifier.classify_with_budget(x, 20).label == *y {
//!         correct += 1;
//!     }
//! }
//! assert!(correct as f64 / test.len() as f64 > 0.5);
//! ```

pub use bayestree;
pub use bt_anytree as anytree;
pub use bt_data as data;
pub use bt_eval as eval;
pub use bt_index as index;
pub use bt_obs as obs;
pub use bt_stats as stats;
pub use clustree;
