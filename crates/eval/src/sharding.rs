//! Shard-count sweeps: quality and wall-clock throughput versus `K`.
//!
//! The sharded trees trade nothing on the quality axis (micro-clusters are
//! additive, kernel densities are sums, per-class trees are independent) and
//! buy wall-clock on the throughput axis — so the right evaluation reports
//! both: purity/accuracy to show quality holds, and objects-per-second
//! to show the scaling.  On a single-core runner the throughput column
//! degenerates to "no worse"; the criterion bench (`shard_scaling`) asserts
//! the ≥1.5× scaling claim only when ≥4 CPUs are available.

use crate::clustering::{micro_cluster_purity, ssq_per_object};
use bayestree::{AnytimeClassifier, ClassifierConfig};
use bt_anytree::DescentStats;
use bt_data::Dataset;
use clustree::{ClusTreeConfig, DbscanConfig, ShardedClusTree};
use std::time::Instant;

/// Quality and throughput of one sharded stream-clustering run.
#[derive(Debug, Clone)]
pub struct ShardedClusteringQuality {
    /// Number of shards the stream was spread over.
    pub shards: usize,
    /// Wall-clock seconds spent inserting the stream.
    pub wall_secs: f64,
    /// Insertion throughput in objects per second.
    pub objects_per_sec: f64,
    /// Weight-weighted micro-cluster purity w.r.t. the true source labels.
    pub purity: f64,
    /// Mean squared distance of each object to its closest micro-cluster.
    pub ssq_per_object: f64,
    /// Number of micro-clusters after folding the shards.
    pub micro_clusters: usize,
    /// Total tree nodes across all shards.
    pub total_nodes: usize,
    /// Macro-clusters found by the offline DBSCAN step over the fold.
    pub macro_clusters: usize,
    /// Objects parked (ran out of budget) anywhere in the sweep.
    pub parked: usize,
    /// Objects routed to each shard — the router-skew observability hook
    /// ahead of the future work-stealing layer (a perfectly balanced router
    /// yields equal counts; `shard_skew` summarises the imbalance).
    pub shard_sizes: Vec<usize>,
    /// The descent engine's work counters merged across shards.
    pub stats: DescentStats,
}

impl ShardedClusteringQuality {
    /// Router skew: largest shard size over the mean shard size (1.0 means
    /// perfectly balanced).
    #[must_use]
    pub fn shard_skew(&self) -> f64 {
        let max = self.shard_sizes.iter().max().copied().unwrap_or(0) as f64;
        let total: usize = self.shard_sizes.iter().sum();
        let mean = total as f64 / self.shard_sizes.len().max(1) as f64;
        if mean <= 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Inserts a labelled stream into a [`ShardedClusTree`] at each shard count
/// and measures clustering quality plus wall-clock insertion throughput.
///
/// The stream is inserted in mini-batches of `batch_size` (each batch
/// descends all shards in parallel); timing covers insertion only, not the
/// offline metrics.
///
/// # Panics
///
/// Panics if the stream is empty, `batch_size == 0`, or any shard count is 0.
#[must_use]
pub fn clustering_shard_sweep(
    stream: &[(Vec<f64>, usize)],
    shard_counts: &[usize],
    node_budget: usize,
    batch_size: usize,
    config: &ClusTreeConfig,
    dbscan: &DbscanConfig,
) -> Vec<ShardedClusteringQuality> {
    assert!(!stream.is_empty(), "stream must not be empty");
    assert!(batch_size > 0, "batch size must be positive");
    let dims = stream[0].0.len();
    shard_counts
        .iter()
        .map(|&shards| {
            let mut tree: ShardedClusTree = ShardedClusTree::new(dims, config.clone(), shards);
            let mut parked = 0usize;
            let start = Instant::now();
            for (batch_idx, chunk) in stream.chunks(batch_size).enumerate() {
                let points: Vec<Vec<f64>> = chunk.iter().map(|(p, _)| p.clone()).collect();
                let timestamp = (batch_idx * batch_size) as f64;
                let result = tree.insert_batch(&points, timestamp, node_budget);
                parked += result.depths.parked_total();
            }
            let wall_secs = start.elapsed().as_secs_f64();
            let micro = tree.micro_clusters();
            ShardedClusteringQuality {
                shards,
                wall_secs,
                objects_per_sec: stream.len() as f64 / wall_secs.max(1e-9),
                purity: micro_cluster_purity(&micro, stream),
                ssq_per_object: ssq_per_object(&micro, stream),
                micro_clusters: micro.len(),
                total_nodes: tree.num_nodes(),
                macro_clusters: tree.offline_clustering(dbscan).num_clusters,
                parked,
                shard_sizes: tree.shard_sizes().to_vec(),
                stats: tree.stats(),
            }
        })
        .collect()
}

/// Training wall-clock and accuracy of one sharded classifier build.
#[derive(Debug, Clone)]
pub struct ShardedTrainingQuality {
    /// Worker-thread count the per-class trees were built with.
    pub shards: usize,
    /// Wall-clock seconds spent training.
    pub train_secs: f64,
    /// Holdout accuracy at `budget` node reads (identical across shard
    /// counts: sharded training is bit-identical to sequential training).
    pub accuracy: f64,
}

/// Trains the anytime classifier with [`AnytimeClassifier::train_sharded`]
/// at each worker count and measures training wall-clock plus holdout
/// accuracy at `budget` node reads.
///
/// # Panics
///
/// Panics if the training or test split is empty.
#[must_use]
pub fn classifier_shard_sweep(
    dataset: &Dataset,
    shard_counts: &[usize],
    budget: usize,
    config: &ClassifierConfig,
) -> Vec<ShardedTrainingQuality> {
    let (train, test) = dataset.split_holdout(0.25, config.seed);
    assert!(!train.is_empty() && !test.is_empty(), "empty split");
    shard_counts
        .iter()
        .map(|&shards| {
            let start = Instant::now();
            let classifier = AnytimeClassifier::train_sharded(&train, config, shards);
            let train_secs = start.elapsed().as_secs_f64();
            let mut correct = 0usize;
            for (x, &y) in test.iter() {
                if classifier.classify_with_budget(x, budget).label == y {
                    correct += 1;
                }
            }
            ShardedTrainingQuality {
                shards,
                train_secs,
                accuracy: correct as f64 / test.len() as f64,
            }
        })
        .collect()
}

/// Formats a clustering shard sweep as aligned text, including the
/// per-shard size split (router skew); the engine counters use
/// [`DescentStats`]' `Display` form.
#[must_use]
pub fn format_clustering_shard_sweep(rows: &[ShardedClusteringQuality]) -> String {
    let mut out = String::from(
        "shards  obj/sec  purity  micro  nodes  macro  parked  skew  sizes / engine\n\
         ------  -------  ------  -----  -----  -----  ------  ----  --------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6}  {:>7.0}  {:>6.3}  {:>5}  {:>5}  {:>5}  {:>6}  {:>4.2}  {:?} {}\n",
            r.shards,
            r.objects_per_sec,
            r.purity,
            r.micro_clusters,
            r.total_nodes,
            r.macro_clusters,
            r.parked,
            r.shard_skew(),
            r.shard_sizes,
            r.stats
        ));
    }
    out
}

/// Formats a classifier training shard sweep as aligned text.
#[must_use]
pub fn format_classifier_shard_sweep(rows: &[ShardedTrainingQuality]) -> String {
    let mut out = String::from(
        "shards  train-secs  accuracy\n\
         ------  ----------  --------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6}  {:>10.3}  {:>8.3}\n",
            r.shards, r.train_secs, r.accuracy
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_data::stream::DriftingStream;
    use bt_data::synth::blobs::BlobConfig;

    fn stream() -> Vec<(Vec<f64>, usize)> {
        DriftingStream::new(3, 2, 0.3, 0.002, 5).generate(600)
    }

    #[test]
    fn clustering_sweep_produces_one_row_per_shard_count() {
        let rows = clustering_shard_sweep(
            &stream(),
            &[1, 2, 4],
            8,
            32,
            &ClusTreeConfig::default(),
            &DbscanConfig::default(),
        );
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.purity > 0.5 && r.purity <= 1.0, "purity {}", r.purity);
            assert!(r.ssq_per_object.is_finite());
            assert!(r.micro_clusters >= 1);
            assert!(r.objects_per_sec > 0.0);
            assert!(r.total_nodes >= r.shards);
            // Router skew is observable: every object lands in some shard.
            assert_eq!(r.shard_sizes.len(), r.shards);
            assert_eq!(r.shard_sizes.iter().sum::<usize>(), 600);
            assert!(r.shard_skew() >= 1.0 - 1e-9);
        }
        let text = format_clustering_shard_sweep(&rows);
        assert_eq!(text.lines().count(), 5);
        assert!(
            text.contains("refreshes="),
            "engine column uses DescentStats Display"
        );
    }

    #[test]
    fn sharding_does_not_hurt_clustering_quality() {
        let rows = clustering_shard_sweep(
            &stream(),
            &[1, 4],
            8,
            32,
            &ClusTreeConfig::default(),
            &DbscanConfig::default(),
        );
        // Shards refine the model (more independent roots), so purity must
        // not collapse relative to the single tree.
        assert!(rows[1].purity + 0.1 >= rows[0].purity);
    }

    #[test]
    fn classifier_sweep_is_quality_invariant_across_shard_counts() {
        let dataset = BlobConfig::new(3, 4)
            .samples_per_class(60)
            .seed(11)
            .generate();
        let rows = classifier_shard_sweep(&dataset, &[1, 2, 4], 15, &ClassifierConfig::default());
        assert_eq!(rows.len(), 3);
        // Sharded training is bit-identical to sequential training, so the
        // accuracy column is constant.
        for r in &rows {
            assert!((r.accuracy - rows[0].accuracy).abs() < 1e-12);
            assert!(r.train_secs >= 0.0);
        }
        assert!(rows[0].accuracy > 0.8, "accuracy {}", rows[0].accuracy);
        let text = format_classifier_shard_sweep(&rows);
        assert_eq!(text.lines().count(), 5);
    }
}
