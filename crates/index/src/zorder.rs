//! Z-order (Morton) space-filling curve.
//!
//! Used by the Z-curve bulk load and, per Section 3.1, to derive the initial
//! Goldberger mapping: fine mixture components are assigned to coarse
//! components "according to the z-curve order of their mean values".

use crate::hilbert::{effective_bits, MAX_KEY_BITS};

/// Computes the Morton key of an already-quantised point by bit interleaving.
///
/// # Panics
///
/// Panics if the key would not fit into 128 bits or `bits` is 0.
#[must_use]
pub fn z_order_index(coords: &[u32], bits: u32) -> u128 {
    assert!(bits > 0, "bits per dimension must be positive");
    assert!(
        coords.len() as u32 * bits <= MAX_KEY_BITS,
        "dims * bits must not exceed 128"
    );
    interleave_bits(coords, bits)
}

/// Interleaves the `bits` least-significant bits of each coordinate, most
/// significant bit plane first, dimension 0 first within a plane.
#[must_use]
pub(crate) fn interleave_bits(coords: &[u32], bits: u32) -> u128 {
    let mut key: u128 = 0;
    for bit in (0..bits).rev() {
        for &c in coords {
            key = (key << 1) | u128::from((c >> bit) & 1);
        }
    }
    key
}

/// Min/max-normalises `points` and quantises each coordinate onto a
/// `2^bits` grid.
#[must_use]
pub(crate) fn quantize_points(points: &[Vec<f64>], bits: u32) -> Vec<Vec<u32>> {
    if points.is_empty() {
        return Vec::new();
    }
    let dims = points[0].len();
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for p in points {
        for d in 0..dims {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let max_cell = ((1u64 << bits) - 1) as f64;
    points
        .iter()
        .map(|p| {
            (0..dims)
                .map(|d| {
                    let range = hi[d] - lo[d];
                    if range <= 0.0 {
                        0
                    } else {
                        (((p[d] - lo[d]) / range * max_cell).round() as u64).min(max_cell as u64)
                            as u32
                    }
                })
                .collect()
        })
        .collect()
}

/// Returns the indices of `points` sorted by their Morton key.
///
/// Points are min/max-normalised and quantised to `bits` bits per dimension
/// (capped so the key fits into 128 bits).
#[must_use]
pub fn z_order_sort_order(points: &[Vec<f64>], bits: u32) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let dims = points[0].len().max(1);
    let bits = effective_bits(dims, bits);
    let grid = quantize_points(points, bits);
    let mut keyed: Vec<(u128, usize)> = grid
        .iter()
        .enumerate()
        .map(|(i, coords)| (z_order_index(coords, bits), i))
        .collect();
    keyed.sort();
    keyed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_d_morton_matches_reference() {
        // Classic 2-bit Morton codes for (x, y), x interleaved first.
        assert_eq!(z_order_index(&[0, 0], 2), 0);
        assert_eq!(z_order_index(&[1, 0], 2), 2);
        assert_eq!(z_order_index(&[0, 1], 2), 1);
        assert_eq!(z_order_index(&[1, 1], 2), 3);
        assert_eq!(z_order_index(&[2, 0], 2), 8);
        assert_eq!(z_order_index(&[3, 3], 2), 15);
    }

    #[test]
    fn keys_are_unique() {
        let mut keys = std::collections::HashSet::new();
        for x in 0..16u32 {
            for y in 0..16u32 {
                assert!(keys.insert(z_order_index(&[x, y], 4)));
            }
        }
        assert_eq!(keys.len(), 256);
    }

    #[test]
    fn sort_order_is_a_permutation() {
        let pts: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![(i % 8) as f64, (i / 8) as f64])
            .collect();
        let mut order = z_order_sort_order(&pts, 8);
        order.sort_unstable();
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn clusters_stay_contiguous() {
        let mut pts = Vec::new();
        for i in 0..8 {
            pts.push(vec![i as f64 * 0.1, 0.0]);
        }
        for i in 0..8 {
            pts.push(vec![50.0 + i as f64 * 0.1, 50.0]);
        }
        let order = z_order_sort_order(&pts, 16);
        let first: Vec<usize> = order[..8].to_vec();
        assert!(first.iter().all(|&i| i < 8) || first.iter().all(|&i| i >= 8));
    }

    #[test]
    fn degenerate_dimension_quantizes_to_zero() {
        let pts = vec![vec![1.0, 7.0], vec![2.0, 7.0]];
        let grid = quantize_points(&pts, 4);
        assert_eq!(grid[0][1], 0);
        assert_eq!(grid[1][1], 0);
    }

    #[test]
    fn empty_input_gives_empty_order() {
        assert!(z_order_sort_order(&[], 8).is_empty());
    }
}
