//! The Bayes tree's payload and node types, instantiated from the shared
//! [`bt_anytree`] core.
//!
//! Definition 1 of the paper: an entry `e_s` stores the minimum bounding
//! rectangle of the objects in its subtree, a pointer to the subtree, and the
//! cluster feature `CF = (n_s, LS, SS)` of those objects.  From the CF the
//! mean and variance of the subtree's Gaussian are derived, which is what
//! makes every *frontier* of entries a complete Gaussian mixture model.
//!
//! Here that payload is [`KernelSummary`]; the arena, entries and nodes are
//! the generic ones of [`bt_anytree`], specialised to it.  An [`Entry`]
//! dereferences to its [`KernelSummary`], so the familiar `entry.mbr` /
//! `entry.cf` field access keeps working.
//!
//! # Stored precision
//!
//! [`KernelSummary`] is parameterised by a [`StoredElement`] — the scalar
//! type its MBR corners and CF components are *stored* at.  The default
//! `f64` is the full-width mode every existing API elaborates to; `f32`
//! halves the resident bytes of every directory entry.  All accumulation
//! (insert, merge, decay) happens in `f64` and is quantised on write:
//! round-to-nearest for the CF sums, *outward* for the MBR corners, so a
//! narrowed box always encloses the exact one and the MBR-derived density
//! bounds stay sound (see `bt_index::mbr`).  Both modes route through the
//! same R* MINDIST/enlargement machinery: the anytime core streams boxes
//! through the per-corner [`Summary::mbr_corner`] accessor (an exact
//! `f32 → f64` widening for narrowed summaries, a plain read for `f64`),
//! so routing quality does not depend on the stored width — only the
//! boxes' outward-rounded slack does, and that is at `f32` epsilon scale.
use bt_anytree::Summary;
use bt_index::{Mbr, MbrElement};
use bt_stats::{ClusterFeature, ColumnElement, DiagGaussian};

/// Arena index of a node within its tree.
pub type NodeId = bt_anytree::NodeId;

/// A scalar type the Bayes tree can store its summaries at.
///
/// Combines the two quantisation traits of the lower layers (CF components
/// are [`ColumnElement`]s, MBR corners are [`MbrElement`]s).  Every stored
/// precision routes through the same R* MBR machinery — the only
/// representational difference the trait surfaces is whether a stored box
/// can be *borrowed* at full width or must be widened per corner.
pub trait StoredElement: ColumnElement + MbrElement + Send + Sync {
    /// The full-width view of a stored box, when one can be borrowed
    /// without conversion: `Some(identity)` for `f64`, `None` for `f32`
    /// (whose boxes are widened per corner via [`Summary::mbr_corner`]
    /// instead).
    fn full_width_mbr(mbr: &Mbr<Self>) -> Option<&Mbr>;
}

impl StoredElement for f64 {
    #[inline(always)]
    fn full_width_mbr(mbr: &Mbr<Self>) -> Option<&Mbr> {
        Some(mbr)
    }
}

impl StoredElement for f32 {
    #[inline(always)]
    fn full_width_mbr(_mbr: &Mbr<Self>) -> Option<&Mbr> {
        None
    }
}

/// The Bayes tree's payload: the MBR and cluster feature of one subtree
/// (Definition 1), stored at precision `E` (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct KernelSummary<E: StoredElement = f64> {
    /// Minimum bounding rectangle of all objects stored below.
    pub mbr: Mbr<E>,
    /// Cluster feature `(n, LS, SS)` of all objects stored below.
    pub cf: ClusterFeature<E>,
}

impl<E: StoredElement> KernelSummary<E> {
    /// The summary of a single kernel centre.
    #[must_use]
    pub fn from_point(point: &[f64]) -> Self {
        Self {
            mbr: Mbr::from_point(point),
            cf: ClusterFeature::from_point(point),
        }
    }

    /// The summary of a set of kernel centres, or `None` when empty.
    #[must_use]
    pub fn from_points(points: &[Vec<f64>], dims: usize) -> Option<Self> {
        let mbr = Mbr::from_points(points.iter().map(Vec::as_slice))?;
        let cf = ClusterFeature::from_points(points.iter().map(Vec::as_slice), dims);
        Some(Self { mbr, cf })
    }

    /// The Gaussian `N(LS/n, SS/n - (LS/n)^2)` this summary contributes to
    /// any mixture model containing it.
    #[must_use]
    pub fn gaussian(&self) -> DiagGaussian {
        self.cf.to_gaussian()
    }

    /// Absorbs a single new point into the summary (used on the insertion
    /// path: every ancestor entry of the target leaf is updated).
    pub fn absorb_point(&mut self, point: &[f64]) {
        self.mbr.extend_point(point);
        self.cf.insert(point);
    }

    /// Re-quantises into another stored precision (boxes round outward, CF
    /// sums to nearest); the identity for `E == F == f64`.
    #[must_use]
    pub fn to_precision<F: StoredElement>(&self) -> KernelSummary<F> {
        KernelSummary {
            mbr: self.mbr.to_precision(),
            cf: self.cf.to_precision(),
        }
    }
}

impl<E: StoredElement> Summary for KernelSummary<E> {
    type Ctx = ();
    const MBR_ROUTED: bool = true;

    fn merge(&mut self, other: &Self, _ctx: ()) {
        self.mbr.extend_mbr(&other.mbr);
        self.cf.merge(&other.cf);
    }

    fn weight(&self) -> f64 {
        self.cf.weight()
    }

    fn sq_dist_to(&self, point: &[f64]) -> f64 {
        // MINDIST to the stored box (widened per corner, so `f32` and
        // `f64` summaries agree whenever the corners do) — keeps shard
        // routing and refinement ordering consistent with descent.
        self.mbr.min_dist_sq(point)
    }

    fn center(&self) -> Vec<f64> {
        self.cf.mean()
    }

    fn center_into(&self, out: &mut Vec<f64>) {
        self.cf.mean_into(out);
    }

    fn as_mbr(&self) -> Option<&Mbr> {
        E::full_width_mbr(&self.mbr)
    }

    fn mbr_corner(&self, d: usize) -> (f64, f64) {
        (
            MbrElement::widen(self.mbr.lower()[d]),
            MbrElement::widen(self.mbr.upper()[d]),
        )
    }

    fn owned_mbr(&self) -> Option<Mbr> {
        Some(self.mbr.to_precision())
    }
}

/// A directory entry: the aggregated description of one subtree
/// (Definition 1).  Dereferences to its [`KernelSummary`] (`entry.mbr`,
/// `entry.cf`, `entry.gaussian()`).
pub type Entry<E = f64> = bt_anytree::Entry<KernelSummary<E>>;

/// The payload of a node: either raw observations (leaf) or entries (inner).
pub type NodeKind<E = f64> = bt_anytree::NodeKind<KernelSummary<E>, Vec<f64>>;

/// One node of the Bayes tree.
pub type Node<E = f64> = bt_anytree::Node<KernelSummary<E>, Vec<f64>>;

/// Builds an [`Entry`] from its parts (the Definition 1 triple).
#[must_use]
pub fn make_entry<E: StoredElement>(mbr: Mbr<E>, cf: ClusterFeature<E>, child: NodeId) -> Entry<E> {
    Entry::new(KernelSummary { mbr, cf }, child)
}

/// The MBR of everything stored in `node`, or `None` when empty.
#[must_use]
pub fn node_mbr<E: StoredElement>(node: &Node<E>) -> Option<Mbr<E>> {
    match &node.kind {
        bt_anytree::NodeKind::Leaf { items } => Mbr::from_points(items.iter().map(Vec::as_slice)),
        bt_anytree::NodeKind::Inner { entries } => Mbr::union_all(entries.iter().map(|e| &e.mbr)),
    }
}

/// The cluster feature of everything stored in `node`.
#[must_use]
pub fn node_cluster_feature<E: StoredElement>(node: &Node<E>, dims: usize) -> ClusterFeature<E> {
    match &node.kind {
        bt_anytree::NodeKind::Leaf { items } => {
            ClusterFeature::from_points(items.iter().map(Vec::as_slice), dims)
        }
        bt_anytree::NodeKind::Inner { entries } => {
            let mut cf = ClusterFeature::empty(dims);
            for e in entries {
                cf.merge(&e.cf);
            }
            cf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_accessors() {
        let node: Node = Node::leaf(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!(node.is_leaf());
        assert_eq!(node.len(), 2);
        assert_eq!(node.items().len(), 2);
        let mbr = node_mbr(&node).unwrap();
        assert_eq!(mbr.lower(), &[1.0, 2.0][..]);
        assert_eq!(mbr.upper(), &[3.0, 4.0][..]);
    }

    #[test]
    fn leaf_cluster_feature_matches_points() {
        let node: Node = Node::leaf(vec![vec![0.0], vec![2.0]]);
        let cf = node_cluster_feature(&node, 1);
        assert_eq!(cf.weight(), 2.0);
        assert_eq!(cf.mean(), vec![1.0]);
    }

    #[test]
    fn inner_cluster_feature_merges_entries() {
        let e1 = make_entry(
            Mbr::from_point(&[0.0]),
            ClusterFeature::from_point(&[0.0]),
            1,
        );
        let e2 = make_entry(
            Mbr::from_point(&[4.0]),
            ClusterFeature::from_point(&[4.0]),
            2,
        );
        let node: Node = Node::inner(vec![e1, e2]);
        assert!(!node.is_leaf());
        let cf = node_cluster_feature(&node, 1);
        assert_eq!(cf.weight(), 2.0);
        assert_eq!(cf.mean(), vec![2.0]);
    }

    #[test]
    fn entry_absorb_point_updates_both_summaries() {
        let mut entry: Entry = make_entry(
            Mbr::from_point(&[1.0, 1.0]),
            ClusterFeature::from_point(&[1.0, 1.0]),
            0,
        );
        entry.absorb_point(&[3.0, 0.0]);
        assert_eq!(entry.weight(), 2.0);
        assert!(entry.mbr.contains_point(&[3.0, 0.0]));
        assert_eq!(entry.cf.mean(), vec![2.0, 0.5]);
    }

    #[test]
    fn entry_gaussian_comes_from_cf() {
        let mut cf: ClusterFeature = ClusterFeature::from_point(&[0.0]);
        cf.insert(&[2.0]);
        let entry: Entry = make_entry(Mbr::from_point(&[0.0]), cf, 0);
        let g = entry.gaussian();
        assert_eq!(g.mean(), &[1.0][..]);
        assert!((g.variance()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "leaf node")]
    fn entries_on_leaf_panics() {
        let node: Node = Node::leaf(vec![]);
        let _ = node.entries();
    }

    #[test]
    #[should_panic(expected = "inner node")]
    fn items_on_inner_panics() {
        let node: Node = Node::inner(vec![]);
        let _ = node.items();
    }

    #[test]
    fn empty_leaf_has_no_mbr() {
        let node: Node = Node::empty_leaf();
        assert!(node.is_empty());
        assert!(node_mbr(&node).is_none());
    }

    #[test]
    fn f32_summary_routes_by_mbr_through_widened_corners() {
        let mut s: KernelSummary<f32> = KernelSummary::from_point(&[0.0, 0.0]);
        s.absorb_point(&[2.0, 2.0]);
        // A narrowed summary cannot lend a full-width reference...
        assert!(s.as_mbr().is_none());
        // ...but it is still MBR-routed through the per-corner widening
        // accessors, so both stored widths share the R* machinery.
        const {
            assert!(<KernelSummary<f32> as Summary>::MBR_ROUTED);
            assert!(!<KernelSummary<f32> as Summary>::CENTER_ROUTED);
        }
        let owned = s.owned_mbr().expect("owned full-width box");
        for d in 0..2 {
            let (lo, hi) = Summary::mbr_corner(&s, d);
            assert_eq!(lo.to_bits(), owned.lower()[d].to_bits());
            assert_eq!(hi.to_bits(), owned.upper()[d].to_bits());
        }
        // sq_dist_to is MINDIST: zero anywhere inside the box, positive out.
        assert_eq!(s.sq_dist_to(&[0.5, 0.5]), 0.0);
        assert!(s.sq_dist_to(&[3.0, 3.0]) > 0.0);
    }

    #[test]
    fn f32_summary_boxes_stay_outward_of_exact_points() {
        let pts = vec![vec![0.1, -0.3], vec![2.7, 1.9], vec![-1.4, 0.6]];
        let s: KernelSummary<f32> = KernelSummary::from_points(&pts, 2).unwrap();
        for p in &pts {
            assert!(
                s.mbr.contains_point(p),
                "narrowed box must contain exact point {p:?}"
            );
        }
        let exact: KernelSummary = KernelSummary::from_points(&pts, 2).unwrap();
        let widened: Mbr = s.mbr.to_precision();
        assert!(widened.contains_mbr(&exact.mbr));
    }

    #[test]
    fn to_precision_round_trips_exactly_on_representable_values() {
        let pts = vec![vec![1.0, 2.0], vec![3.5, -0.25]];
        let narrow: KernelSummary<f32> = KernelSummary::from_points(&pts, 2).unwrap();
        let wide: KernelSummary = narrow.to_precision();
        let back: KernelSummary<f32> = wide.to_precision();
        assert_eq!(narrow.mbr, back.mbr);
        assert_eq!(narrow.cf.linear_sum(), back.cf.linear_sum());
        assert_eq!(narrow.cf.squared_sum(), back.cf.squared_sum());
    }
}
