//! Health-monitoring scenario (Section 4.1 / reference [13] of the paper):
//! a mobile device performs a cheap pre-classification using only the upper
//! levels of the Bayes tree and forwards uncertain cases to a server that can
//! afford a deeper descent — multi-step classification on a varying stream.
//!
//! Run with `cargo run --release --example health_monitoring`.

use anytime_stream_mining::bayestree::{AnytimeClassifier, BulkLoadMethod, ClassifierConfig};
use anytime_stream_mining::data::synth::Benchmark;
use anytime_stream_mining::index::PageGeometry;

fn main() {
    // The Gender benchmark stands in for the physiological sensor data of the
    // paper's HealthNet application.
    let dataset = Benchmark::Gender.generate(6_000, 13);
    let (train, test) = dataset.split_holdout(0.3, 1);

    let config = ClassifierConfig {
        bulk_load: BulkLoadMethod::EmTopDown,
        geometry: Some(PageGeometry::from_fanout(8, 16)),
        ..ClassifierConfig::default()
    };
    let classifier = AnytimeClassifier::train(&train, &config);

    // Stage 1 (mobile device): 3 node reads; forward to the server whenever
    // the posterior margin is small.
    let device_budget = 3;
    let server_budget = 60;
    let confidence_threshold = 0.8;

    let mut device_correct = 0usize;
    let mut forwarded = 0usize;
    let mut final_correct = 0usize;

    for (x, &y) in test.iter() {
        let quick = classifier.classify_with_budget(x, device_budget);
        let confidence = quick.posteriors.iter().cloned().fold(0.0f64, f64::max);
        let final_label = if confidence < confidence_threshold {
            forwarded += 1;
            classifier.classify_with_budget(x, server_budget).label
        } else {
            quick.label
        };
        if quick.label == y {
            device_correct += 1;
        }
        if final_label == y {
            final_correct += 1;
        }
    }

    let n = test.len() as f64;
    println!(
        "multi-step classification on {} monitoring records:",
        test.len()
    );
    println!(
        "  device only ({device_budget} nodes):        accuracy {:.3}",
        device_correct as f64 / n
    );
    println!(
        "  device + server ({server_budget} nodes when unsure): accuracy {:.3}",
        final_correct as f64 / n
    );
    println!(
        "  records forwarded to the server: {} ({:.1}% of the stream)",
        forwarded,
        forwarded as f64 / n * 100.0
    );
}
